//! Algorithm 1: bidirectional stepwise privacy-budget distribution.
//!
//! Starting from the uniform distribution, the optimizer repeatedly probes,
//! for each element `i`, the redistribution "give `i` one step `δε` more,
//! take it from the others", scores each candidate with the historical
//! quality model, and commits the best probe while it does not degrade
//! quality. The paper suggests `δε = m·ε/100` (Algorithm 1, line 2).
//!
//! Two step rules are provided (see DESIGN.md §3):
//!
//! * [`StepRule::Conserving`] (default) — the others lose `δε/(m−1)`, so
//!   `Σεᵢ = ε` holds exactly at every step;
//! * [`StepRule::PaperLiteral`] — the others lose `δε/m` exactly as the
//!   pseudocode reads (which drifts by `+δε/m` per step); the result is
//!   renormalized to `Σεᵢ = ε` after every step so the Theorem 1 budget
//!   stays honest.
//!
//! Termination: the paper's loop accepts while `maxᵢ Qᵢ ≥ Q`, which cycles
//! on plateaus; we accept strictly improving probes and stop otherwise
//! (plus an iteration cap), which is the standard stepwise-regression
//! reading of "bidirectional stepwise".

use serde::{Deserialize, Serialize};

use pdp_cep::{PatternId, PatternSet};
use pdp_dp::Epsilon;

use crate::distribution::BudgetDistribution;
use crate::error::CoreError;
use crate::protect::{FlipTable, ProtectionPipeline};
use crate::quality_model::QualityModel;

/// How a probe redistributes budget (Algorithm 1, line 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum StepRule {
    /// Exact conservation: others lose `δε/(m−1)`.
    #[default]
    Conserving,
    /// The paper's literal `δε/m`, renormalized after each step.
    PaperLiteral,
}

/// Tuning knobs for the adaptive optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Probe redistribution rule.
    pub step_rule: StepRule,
    /// `δε = m·ε / step_divisor`; the paper's suggestion is 100.
    pub step_divisor: f64,
    /// Hard cap on accepted steps (safety against plateaus).
    pub max_iters: usize,
    /// Coordinate-descent rounds over multiple private patterns.
    pub rounds: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            step_rule: StepRule::Conserving,
            step_divisor: 100.0,
            max_iters: 200,
            rounds: 1,
        }
    }
}

/// Optimize the budget distribution of one private pattern, holding the
/// distributions of `others` fixed.
pub fn optimize_single(
    patterns: &PatternSet,
    private: PatternId,
    others: &[(PatternId, BudgetDistribution)],
    eps: Epsilon,
    model: &QualityModel,
    n_types: usize,
    config: &AdaptiveConfig,
) -> Result<BudgetDistribution, CoreError> {
    let pattern = patterns
        .get(private)
        .ok_or(CoreError::UnknownPattern(private.0))?;
    let m = pattern.len();
    let mut current = BudgetDistribution::uniform(eps, m)?;
    if m == 1 || eps.is_zero() {
        // Nothing to redistribute.
        return Ok(current);
    }
    let step = m as f64 * eps.value() / config.step_divisor;

    let score = |dist: &BudgetDistribution| -> Result<f64, CoreError> {
        let mut assignments = others.to_vec();
        assignments.push((private, dist.clone()));
        let table = FlipTable::from_distributions(patterns, &assignments, n_types)?;
        Ok(model.expected_quality(&table).q)
    };

    let mut best_q = score(&current)?;
    for _ in 0..config.max_iters {
        let mut best_probe: Option<(BudgetDistribution, f64)> = None;
        for i in 0..m {
            let Some(candidate) = probe(&current, i, step, eps, config.step_rule) else {
                continue;
            };
            let q = score(&candidate)?;
            if best_probe.as_ref().is_none_or(|(_, bq)| q > *bq) {
                best_probe = Some((candidate, q));
            }
        }
        match best_probe {
            Some((candidate, q)) if q > best_q + 1e-12 => {
                current = candidate;
                best_q = q;
            }
            _ => break,
        }
    }
    Ok(current)
}

/// Build a probe: share `i` gains `step`, the others shrink per `rule`;
/// shares are clamped to `[0, ε]` and renormalized to sum exactly `ε`.
/// Returns `None` when the probe is a no-op (e.g. everything already at
/// the bounds).
fn probe(
    current: &BudgetDistribution,
    i: usize,
    step: f64,
    eps: Epsilon,
    rule: StepRule,
) -> Option<BudgetDistribution> {
    let m = current.len();
    let mut values: Vec<f64> = current.shares().iter().map(|s| s.value()).collect();
    let gain = step.min(eps.value() - values[i]);
    if gain <= 0.0 {
        return None;
    }
    let loss_per_other = match rule {
        StepRule::Conserving => gain / (m as f64 - 1.0),
        StepRule::PaperLiteral => step / m as f64,
    };
    values[i] += gain;
    for (j, v) in values.iter_mut().enumerate() {
        if j != i {
            *v = (*v - loss_per_other).max(0.0);
        }
    }
    // Renormalize to Σ = ε (clamping and the paper-literal rule both drift).
    let sum: f64 = values.iter().sum();
    if sum <= 0.0 {
        return None;
    }
    let scale = eps.value() / sum;
    let shares: Vec<Epsilon> = values
        .iter()
        .map(|&v| Epsilon::new_unchecked((v * scale).min(eps.value())))
        .collect();
    let dist = BudgetDistribution::from_shares(eps, shares).ok()?;
    // Reject no-ops (within tolerance) so the search terminates.
    let moved = dist
        .shares()
        .iter()
        .zip(current.shares())
        .any(|(a, b)| (a.value() - b.value()).abs() > 1e-12);
    moved.then_some(dist)
}

/// Optimize all private patterns by coordinate descent: each round
/// re-optimizes every pattern with the others held at their latest
/// distributions.
pub fn optimize_all(
    patterns: &PatternSet,
    private: &[PatternId],
    eps: Epsilon,
    model: &QualityModel,
    n_types: usize,
    config: &AdaptiveConfig,
) -> Result<Vec<(PatternId, BudgetDistribution)>, CoreError> {
    let mut assignments: Vec<(PatternId, BudgetDistribution)> = private
        .iter()
        .map(|&id| {
            let p = patterns.get(id).ok_or(CoreError::UnknownPattern(id.0))?;
            Ok((id, BudgetDistribution::uniform(eps, p.len())?))
        })
        .collect::<Result<Vec<_>, CoreError>>()?;

    for _ in 0..config.rounds.max(1) {
        for k in 0..assignments.len() {
            let (id, _) = assignments[k];
            let others: Vec<(PatternId, BudgetDistribution)> = assignments
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != k)
                .map(|(_, a)| a.clone())
                .collect();
            let optimized = optimize_single(patterns, id, &others, eps, model, n_types, config)?;
            assignments[k].1 = optimized;
        }
    }
    Ok(assignments)
}

impl ProtectionPipeline {
    /// The adaptive PPM (§V-B): Algorithm 1 over historical data.
    pub fn adaptive(
        patterns: &PatternSet,
        private: &[PatternId],
        eps: Epsilon,
        model: &QualityModel,
        n_types: usize,
        config: &AdaptiveConfig,
    ) -> Result<Self, CoreError> {
        let assignments = optimize_all(patterns, private, eps, model, n_types, config)?;
        ProtectionPipeline::from_assignments("adaptive", patterns, assignments, n_types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protect::Mechanism;
    use pdp_cep::Pattern;
    use pdp_metrics::Alpha;
    use pdp_stream::{EventType, IndicatorVector, WindowedIndicators};

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    /// A workload where element 0 of the private pattern is critical for
    /// the target while element 1 is not: the optimizer should shift budget
    /// toward element 0 (more budget = less noise = higher quality).
    ///
    /// Types: 0 (shared private/target), 1 (private only), 2 (target only).
    /// Private pattern: seq(0, 1). Target pattern: seq(0, 2).
    fn skewed_fixture() -> (PatternSet, PatternId, PatternId, QualityModel) {
        let mut set = PatternSet::new();
        let private = set.insert(Pattern::seq("private", vec![t(0), t(1)]).unwrap());
        let target = set.insert(Pattern::seq("target", vec![t(0), t(2)]).unwrap());
        // Windows where the target is frequently present through type 0.
        let mut windows = Vec::new();
        for k in 0..40 {
            let mut present = Vec::new();
            if k % 2 == 0 {
                present.push(t(0));
                present.push(t(2));
            }
            if k % 5 == 0 {
                present.push(t(1));
            }
            windows.push(IndicatorVector::from_present(present, 3));
        }
        let model = QualityModel::new(
            WindowedIndicators::new(windows),
            &set,
            &[target],
            Alpha::HALF,
        )
        .unwrap();
        (set, private, target, model)
    }

    #[test]
    fn adaptive_shifts_budget_toward_shared_element() {
        let (set, private, _, model) = skewed_fixture();
        let config = AdaptiveConfig::default();
        let dist = optimize_single(&set, private, &[], eps(2.0), &model, 3, &config).unwrap();
        // Element 0 (shared with the target) should end with more budget
        // than element 1 (private-only).
        assert!(
            dist.shares()[0].value() > dist.shares()[1].value(),
            "expected skew toward shared element, got {:?}",
            dist.shares()
        );
        // Conservation invariant.
        let sum: f64 = dist.shares().iter().map(|s| s.value()).sum();
        assert!((sum - 2.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_never_degrades_expected_quality_vs_uniform() {
        let (set, private, _, model) = skewed_fixture();
        let config = AdaptiveConfig::default();
        let adaptive_dist =
            optimize_single(&set, private, &[], eps(1.0), &model, 3, &config).unwrap();
        let uniform_dist = BudgetDistribution::uniform(eps(1.0), 2).unwrap();
        let q = |d: &BudgetDistribution| {
            let table = FlipTable::from_distributions(&set, &[(private, d.clone())], 3).unwrap();
            model.expected_quality(&table).q
        };
        assert!(q(&adaptive_dist) >= q(&uniform_dist) - 1e-12);
    }

    #[test]
    fn paper_literal_rule_also_conserves_after_renormalization() {
        let (set, private, _, model) = skewed_fixture();
        let config = AdaptiveConfig {
            step_rule: StepRule::PaperLiteral,
            ..AdaptiveConfig::default()
        };
        let dist = optimize_single(&set, private, &[], eps(2.0), &model, 3, &config).unwrap();
        let sum: f64 = dist.shares().iter().map(|s| s.value()).sum();
        assert!((sum - 2.0).abs() < 1e-9, "paper-literal drifted: {sum}");
    }

    #[test]
    fn single_element_pattern_stays_uniform() {
        let mut set = PatternSet::new();
        let private = set.insert(Pattern::single("p", t(0)));
        let target = set.insert(Pattern::single("t", t(0)));
        let windows = WindowedIndicators::new(vec![IndicatorVector::from_present([t(0)], 1); 5]);
        let model = QualityModel::new(windows, &set, &[target], Alpha::HALF).unwrap();
        let dist = optimize_single(
            &set,
            private,
            &[],
            eps(1.0),
            &model,
            1,
            &AdaptiveConfig::default(),
        )
        .unwrap();
        assert_eq!(dist.len(), 1);
        assert!((dist.shares()[0].value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_budget_short_circuits() {
        let (set, private, _, model) = skewed_fixture();
        let dist = optimize_single(
            &set,
            private,
            &[],
            Epsilon::ZERO,
            &model,
            3,
            &AdaptiveConfig::default(),
        )
        .unwrap();
        assert!(dist.shares().iter().all(|s| s.is_zero()));
    }

    #[test]
    fn optimize_all_handles_multiple_patterns() {
        let mut set = PatternSet::new();
        let p1 = set.insert(Pattern::seq("p1", vec![t(0), t(1)]).unwrap());
        let p2 = set.insert(Pattern::seq("p2", vec![t(2), t(3)]).unwrap());
        let target = set.insert(Pattern::seq("t", vec![t(0), t(2)]).unwrap());
        let mut windows = Vec::new();
        for k in 0..30 {
            let mut present = Vec::new();
            if k % 2 == 0 {
                present.extend([t(0), t(2)]);
            }
            if k % 3 == 0 {
                present.extend([t(1), t(3)]);
            }
            windows.push(IndicatorVector::from_present(present, 4));
        }
        let model = QualityModel::new(
            WindowedIndicators::new(windows),
            &set,
            &[target],
            Alpha::HALF,
        )
        .unwrap();
        let config = AdaptiveConfig {
            rounds: 2,
            ..AdaptiveConfig::default()
        };
        let assignments = optimize_all(&set, &[p1, p2], eps(1.5), &model, 4, &config).unwrap();
        assert_eq!(assignments.len(), 2);
        for (_, d) in &assignments {
            let sum: f64 = d.shares().iter().map(|s| s.value()).sum();
            assert!((sum - 1.5).abs() < 1e-9);
        }
    }

    #[test]
    fn adaptive_pipeline_constructor() {
        let (set, private, _, model) = skewed_fixture();
        let pipeline = ProtectionPipeline::adaptive(
            &set,
            &[private],
            eps(1.0),
            &model,
            3,
            &AdaptiveConfig::default(),
        )
        .unwrap();
        assert_eq!(pipeline.name(), "adaptive");
        assert_eq!(pipeline.assignments().len(), 1);
        // type 2 (target-only) must remain unprotected
        assert_eq!(pipeline.flip_table().prob(t(2)).value(), 0.0);
    }

    #[test]
    fn probe_respects_bounds() {
        let current = BudgetDistribution::uniform(eps(1.0), 3).unwrap();
        let p = probe(&current, 0, 0.1, eps(1.0), StepRule::Conserving).unwrap();
        let sum: f64 = p.shares().iter().map(|s| s.value()).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(p.shares()[0].value() > current.shares()[0].value());
        // share already at the cap → probe is None
        let capped =
            BudgetDistribution::from_shares(eps(1.0), vec![eps(1.0), eps(0.0), eps(0.0)]).unwrap();
        assert!(probe(&capped, 0, 0.1, eps(1.0), StepRule::Conserving).is_none());
    }
}
