//! Neighboring relations (Defs. 1 and 3 of the paper).
//!
//! *In-pattern neighbors* (Def. 1): two same-length patterns differing in
//! exactly one element. *Pattern-level neighbors* (Def. 3): two pattern
//! streams identical everywhere except that instances of the protected
//! pattern type may be replaced by in-pattern neighbors.
//!
//! For mechanism verification we also work at the indicator level: within a
//! window, changing one *element event* of the private pattern flips one
//! indicator bit belonging to the pattern — [`indicator_neighbors`]
//! enumerates those single-bit variants. The empirical DP tests in this
//! crate and in `tests/` check the Def. 4 likelihood-ratio bound over these
//! neighbor sets exactly.

use pdp_stream::{EventType, IndicatorVector};

/// Def. 1: true iff `a` and `b` have the same length and differ in exactly
/// one position.
pub fn is_in_pattern_neighbor(a: &[EventType], b: &[EventType]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let diffs = a.iter().zip(b).filter(|(x, y)| x != y).count();
    diffs == 1
}

/// Enumerate all in-pattern neighbors of `instance` over `alphabet`:
/// every single-position substitution by a different event type.
pub fn in_pattern_neighbors(instance: &[EventType], alphabet: &[EventType]) -> Vec<Vec<EventType>> {
    let mut out = Vec::new();
    for i in 0..instance.len() {
        for &ty in alphabet {
            if ty != instance[i] {
                let mut n = instance.to_vec();
                n[i] = ty;
                out.push(n);
            }
        }
    }
    out
}

/// Indicator-level neighbors with respect to a private pattern: all
/// variants of `window` obtained by flipping exactly one indicator position
/// belonging to `pattern_types`.
pub fn indicator_neighbors(
    window: &IndicatorVector,
    pattern_types: &[EventType],
) -> Vec<IndicatorVector> {
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for &ty in pattern_types {
        if !seen.insert(ty) {
            continue; // repeated elements flip the same indicator bit
        }
        let mut v = window.clone();
        v.flip(ty);
        out.push(v);
    }
    out
}

/// True iff two indicator vectors differ in exactly one position, and that
/// position belongs to `pattern_types`.
pub fn is_indicator_neighbor(
    a: &IndicatorVector,
    b: &IndicatorVector,
    pattern_types: &[EventType],
) -> bool {
    if a.n_types() != b.n_types() {
        return false;
    }
    let mut diff: Option<usize> = None;
    for i in 0..a.n_types() {
        let ty = EventType(i as u32);
        if a.get(ty) != b.get(ty) {
            if diff.is_some() {
                return false;
            }
            diff = Some(i);
        }
    }
    match diff {
        Some(i) => pattern_types.contains(&EventType(i as u32)),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    #[test]
    fn def1_exactly_one_difference() {
        let a = [t(0), t(1), t(2)];
        assert!(is_in_pattern_neighbor(&a, &[t(0), t(9), t(2)]));
        assert!(!is_in_pattern_neighbor(&a, &a)); // zero differences
        assert!(!is_in_pattern_neighbor(&a, &[t(9), t(9), t(2)])); // two
        assert!(!is_in_pattern_neighbor(&a, &[t(0), t(1)])); // length
    }

    #[test]
    fn neighbor_enumeration_counts() {
        let alphabet = [t(0), t(1), t(2), t(3)];
        let instance = [t(0), t(1)];
        let ns = in_pattern_neighbors(&instance, &alphabet);
        // each of 2 positions can take 3 other values
        assert_eq!(ns.len(), 6);
        for n in &ns {
            assert!(is_in_pattern_neighbor(&instance, n));
        }
    }

    #[test]
    fn indicator_neighbors_flip_one_pattern_bit() {
        let w = IndicatorVector::from_present([t(0), t(2)], 4);
        let ns = indicator_neighbors(&w, &[t(0), t(3)]);
        assert_eq!(ns.len(), 2);
        for n in &ns {
            assert!(is_indicator_neighbor(&w, n, &[t(0), t(3)]));
        }
        // flipping t(0): present → absent
        assert!(!ns[0].get(t(0)));
        // flipping t(3): absent → present
        assert!(ns[1].get(t(3)));
    }

    #[test]
    fn repeated_pattern_elements_yield_one_indicator_neighbor() {
        let w = IndicatorVector::empty(3);
        let ns = indicator_neighbors(&w, &[t(1), t(1)]);
        assert_eq!(ns.len(), 1);
    }

    #[test]
    fn is_indicator_neighbor_rejects_non_pattern_bits() {
        let a = IndicatorVector::from_present([t(0)], 3);
        let mut b = a.clone();
        b.flip(t(2));
        assert!(is_indicator_neighbor(&a, &b, &[t(2)]));
        assert!(!is_indicator_neighbor(&a, &b, &[t(0)]));
        assert!(!is_indicator_neighbor(&a, &a, &[t(0)])); // identical
        let mut c = b.clone();
        c.flip(t(1));
        assert!(!is_indicator_neighbor(&a, &c, &[t(1), t(2)])); // two diffs
    }

    #[test]
    fn width_mismatch_is_not_neighbor() {
        let a = IndicatorVector::empty(3);
        let b = IndicatorVector::empty(4);
        assert!(!is_indicator_neighbor(&a, &b, &[t(0)]));
    }
}
