//! The trusted CEP engine middleware (§III-A, Fig. 2).
//!
//! The engine sits between data subjects and data consumers:
//!
//! * **setup phase** — data subjects register private patterns; data
//!   consumers register target-pattern queries and the quality weight α;
//!   data subjects may grant access to historical data (required by the
//!   adaptive PPM);
//! * **service phase** — data subjects stream raw data; the engine applies
//!   the configured pattern-level PPM and answers the consumers' binary
//!   queries from the *protected* view only, accounting each pattern's
//!   budget in a ledger.

use pdp_cep::{Pattern, PatternId, PatternSet, QueryId};
use pdp_dp::{BudgetLedger, DpRng, Epsilon};
use pdp_metrics::Alpha;
use pdp_stream::WindowedIndicators;

use crate::adaptive::AdaptiveConfig;
use crate::error::CoreError;
use crate::protect::{Mechanism, ProtectionPipeline};
use crate::quality_model::QualityModel;
use crate::streaming::OnlineCore;

/// Which pattern-level PPM the engine applies.
#[derive(Debug, Clone, PartialEq)]
pub enum PpmKind {
    /// §V-A: uniform budget distribution.
    Uniform {
        /// Pattern-level budget per private pattern.
        eps: Epsilon,
    },
    /// §V-B: adaptive budget distribution (Algorithm 1).
    Adaptive {
        /// Pattern-level budget per private pattern.
        eps: Epsilon,
        /// Optimizer knobs.
        config: AdaptiveConfig,
    },
    /// No protection — answers reflect the raw stream (for measuring
    /// `Q_ord`).
    PassThrough,
}

/// Engine construction parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrustedEngineConfig {
    /// Size of the event-type universe.
    pub n_types: usize,
    /// The consumers' quality weight (Eq. 3).
    pub alpha: Alpha,
    /// The PPM to apply.
    pub ppm: PpmKind,
}

/// Per-query protected answers for one served batch of windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectedAnswer {
    /// The consumer query answered.
    pub query: QueryId,
    /// The query's display name.
    pub name: String,
    /// One binary answer per window.
    pub answers: Vec<bool>,
}

/// The trusted middleware.
///
/// After [`TrustedEngine::setup`], all service goes through the shared
/// [`OnlineCore`] — the batch methods below are thin adapters replaying a
/// windowed history through the same per-window release path the
/// [`StreamingEngine`](crate::streaming::StreamingEngine) drives event by
/// event.
#[derive(Debug, Clone)]
pub struct TrustedEngine {
    config: TrustedEngineConfig,
    patterns: PatternSet,
    private: Vec<PatternId>,
    queries: Vec<(String, PatternId)>,
    history: Option<WindowedIndicators>,
    core: Option<OnlineCore>,
    ledger: BudgetLedger<PatternId>,
}

impl TrustedEngine {
    /// A fresh engine in the setup phase.
    pub fn new(config: TrustedEngineConfig) -> Self {
        TrustedEngine {
            config,
            patterns: PatternSet::new(),
            private: Vec::new(),
            queries: Vec::new(),
            history: None,
            core: None,
            ledger: BudgetLedger::unlimited(),
        }
    }

    /// Data subject: declare a private pattern to protect.
    pub fn register_private_pattern(&mut self, pattern: Pattern) -> PatternId {
        let id = self.patterns.insert(pattern);
        self.private.push(id);
        self.core = None; // invalidate any earlier setup
        id
    }

    /// Register a pattern that is neither private nor queried (e.g. a
    /// workload pattern kept for id parity with an external registry).
    pub fn register_pattern(&mut self, pattern: Pattern) -> PatternId {
        let id = self.patterns.insert(pattern);
        self.core = None;
        id
    }

    /// Data consumer: declare a target pattern and a binary query on it.
    pub fn register_target_query(&mut self, name: &str, pattern: Pattern) -> (QueryId, PatternId) {
        let pid = self.patterns.insert(pattern);
        let qid = QueryId(self.queries.len() as u32);
        self.queries.push((name.to_owned(), pid));
        self.core = None;
        (qid, pid)
    }

    /// Data subject: grant access to historical data (adaptive PPM input).
    pub fn provide_history(&mut self, windows: WindowedIndicators) {
        self.history = Some(windows);
        self.core = None;
    }

    /// Complete the setup phase: build the protection pipeline.
    pub fn setup(&mut self) -> Result<(), CoreError> {
        let pipeline = match &self.config.ppm {
            PpmKind::PassThrough => ProtectionPipeline::from_assignments(
                "pass-through",
                &self.patterns,
                Vec::new(),
                self.config.n_types,
            )?,
            PpmKind::Uniform { eps } => ProtectionPipeline::uniform(
                &self.patterns,
                &self.private,
                *eps,
                self.config.n_types,
            )?,
            PpmKind::Adaptive { eps, config } => {
                let history = self.history.as_ref().ok_or(CoreError::MissingHistory)?;
                let target_ids: Vec<PatternId> = self.queries.iter().map(|(_, pid)| *pid).collect();
                let model = QualityModel::new(
                    history.clone(),
                    &self.patterns,
                    &target_ids,
                    self.config.alpha,
                )?;
                ProtectionPipeline::adaptive(
                    &self.patterns,
                    &self.private,
                    *eps,
                    &model,
                    self.config.n_types,
                    config,
                )?
            }
        };
        self.core = Some(OnlineCore::new(
            pipeline,
            self.patterns.clone(),
            self.queries.clone(),
        )?);
        Ok(())
    }

    /// True once [`TrustedEngine::setup`] has completed.
    pub fn is_set_up(&self) -> bool {
        self.core.is_some()
    }

    /// The registered pattern set (private + target).
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// Ids of the registered private patterns.
    pub fn private_patterns(&self) -> &[PatternId] {
        &self.private
    }

    /// The active pipeline (after setup).
    pub fn pipeline(&self) -> Option<&ProtectionPipeline> {
        self.core.as_ref().map(OnlineCore::pipeline)
    }

    /// The shared online release core (after setup); what
    /// [`StreamingEngine::from_engine`](crate::streaming::StreamingEngine::from_engine)
    /// clones to go push-based.
    pub(crate) fn online_core(&self) -> Option<&OnlineCore> {
        self.core.as_ref()
    }

    /// Budget spent so far on one private pattern.
    pub fn budget_spent(&self, id: PatternId) -> Epsilon {
        self.ledger.spent(&id)
    }

    /// Widen the active protection to latent correlates of the private
    /// patterns (§V-C): event types whose historical lift against a
    /// private pattern exceeds `threshold` receive randomized response
    /// with per-type budget `correlate_eps`, composed onto the existing
    /// table. Requires setup and historical data. Returns the flagged
    /// correlates.
    pub fn widen_for_correlates(
        &mut self,
        threshold: f64,
        correlate_eps: Epsilon,
    ) -> Result<Vec<crate::correlation::Correlate>, CoreError> {
        let history = self.history.as_ref().ok_or(CoreError::MissingHistory)?;
        let pipeline = self.pipeline().ok_or(CoreError::NotSetUp)?;
        let correlates =
            crate::correlation::find_correlates(history, &self.patterns, &self.private, threshold)?;
        let widened = crate::correlation::widen_protection(
            pipeline.flip_table(),
            &correlates,
            correlate_eps,
        )?;
        let widened_pipeline = ProtectionPipeline::from_table(
            &format!("{}+correlates", pipeline.name()),
            widened,
            pipeline.assignments().to_vec(),
        );
        self.core = Some(OnlineCore::new(
            widened_pipeline,
            self.patterns.clone(),
            self.queries.clone(),
        )?);
        Ok(correlates)
    }

    /// Service phase: protect a batch of windows and answer every
    /// registered consumer query on the protected view.
    ///
    /// A thin adapter over the online core: each window is replayed through
    /// the same [`OnlineCore::release_window`] path the streaming engine
    /// drives, so each window is a release and charges every protected
    /// pattern's full budget to the ledger (sequential composition across
    /// windows and serves).
    pub fn serve(
        &mut self,
        windows: &WindowedIndicators,
        rng: &mut DpRng,
    ) -> Result<Vec<ProtectedAnswer>, CoreError> {
        let core = self.core.as_ref().ok_or(CoreError::NotSetUp)?;
        let mut per_query: Vec<Vec<bool>> =
            vec![Vec::with_capacity(windows.len()); self.queries.len()];
        // the batch engine registers only pattern queries, so every typed
        // answer is a `Bool` and the serve is stateless and charge-free
        let mut state = crate::answer::QueryStateSet::new();
        for window in windows.iter() {
            let released = core.release_window(window, &mut self.ledger, rng)?;
            let (answers, charges) = core.answer_window(&released, &mut state, rng);
            debug_assert!(charges.is_empty(), "pattern queries never charge");
            for (qi, answer) in answers.into_iter().enumerate() {
                per_query[qi].push(answer.truthy());
            }
        }
        Ok(self
            .queries
            .iter()
            .zip(per_query)
            .enumerate()
            .map(|(qi, ((name, _), answers))| ProtectedAnswer {
                query: QueryId(qi as u32),
                name: name.clone(),
                answers,
            })
            .collect())
    }

    /// The protected indicator view itself (what a consumer with raw-stream
    /// access would receive). Same release path and accounting as
    /// [`TrustedEngine::serve`].
    pub fn protected_view(
        &mut self,
        windows: &WindowedIndicators,
        rng: &mut DpRng,
    ) -> Result<WindowedIndicators, CoreError> {
        let core = self.core.as_ref().ok_or(CoreError::NotSetUp)?;
        let mut out = Vec::with_capacity(windows.len());
        for window in windows.iter() {
            out.push(core.release_window(window, &mut self.ledger, rng)?);
        }
        Ok(WindowedIndicators::new(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdp_stream::{EventType, IndicatorVector};

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn windows() -> WindowedIndicators {
        WindowedIndicators::new(vec![
            IndicatorVector::from_present([t(0), t(1)], 4),
            IndicatorVector::from_present([t(2), t(3)], 4),
            IndicatorVector::from_present([t(0), t(2)], 4),
        ])
    }

    fn engine(ppm: PpmKind) -> TrustedEngine {
        TrustedEngine::new(TrustedEngineConfig {
            n_types: 4,
            alpha: Alpha::HALF,
            ppm,
        })
    }

    #[test]
    fn serve_requires_setup() {
        let mut e = engine(PpmKind::PassThrough);
        let mut rng = DpRng::seed_from(1);
        assert!(matches!(
            e.serve(&windows(), &mut rng),
            Err(CoreError::NotSetUp)
        ));
        assert!(!e.is_set_up());
    }

    #[test]
    fn pass_through_answers_truth() {
        let mut e = engine(PpmKind::PassThrough);
        let (qid, _) = e.register_target_query("t0?", Pattern::single("t0", t(0)));
        e.setup().unwrap();
        let mut rng = DpRng::seed_from(1);
        let answers = e.serve(&windows(), &mut rng).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].query, qid);
        assert_eq!(answers[0].answers, vec![true, false, true]);
    }

    #[test]
    fn uniform_ppm_protects_only_private_types() {
        let mut e = engine(PpmKind::Uniform { eps: eps(1.0) });
        let private = e.register_private_pattern(Pattern::seq("priv", vec![t(0), t(1)]).unwrap());
        e.register_target_query("t2?", Pattern::single("t2", t(2)));
        e.setup().unwrap();
        let table = e.pipeline().unwrap().flip_table();
        assert!(table.prob(t(0)).value() > 0.0);
        assert!(table.prob(t(1)).value() > 0.0);
        assert_eq!(table.prob(t(2)).value(), 0.0);
        assert_eq!(table.prob(t(3)).value(), 0.0);
        assert_eq!(e.private_patterns(), &[private]);
        // a query about the uncorrelated type 2 is answered exactly
        let mut rng = DpRng::seed_from(9);
        let answers = e.serve(&windows(), &mut rng).unwrap();
        assert_eq!(answers[0].answers, vec![false, true, true]);
    }

    #[test]
    fn ledger_accumulates_across_serves() {
        let mut e = engine(PpmKind::Uniform { eps: eps(0.5) });
        let private = e.register_private_pattern(Pattern::single("p", t(0)));
        e.register_target_query("q", Pattern::single("t", t(2)));
        e.setup().unwrap();
        let mut rng = DpRng::seed_from(2);
        e.serve(&windows(), &mut rng).unwrap();
        e.serve(&windows(), &mut rng).unwrap();
        // each of the 3 windows per serve is a release of eps = 0.5:
        // 2 serves x 3 windows x 0.5 (sequential composition per release)
        assert!((e.budget_spent(private).value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn adaptive_requires_history() {
        let mut e = engine(PpmKind::Adaptive {
            eps: eps(1.0),
            config: AdaptiveConfig::default(),
        });
        e.register_private_pattern(Pattern::seq("p", vec![t(0), t(1)]).unwrap());
        e.register_target_query("q", Pattern::single("t", t(0)));
        assert!(matches!(e.setup(), Err(CoreError::MissingHistory)));
        e.provide_history(windows());
        e.setup().unwrap();
        assert!(e.is_set_up());
        assert_eq!(e.pipeline().unwrap().name(), "adaptive");
    }

    #[test]
    fn registration_invalidates_setup() {
        let mut e = engine(PpmKind::PassThrough);
        e.register_target_query("q", Pattern::single("t", t(0)));
        e.setup().unwrap();
        assert!(e.is_set_up());
        e.register_private_pattern(Pattern::single("p", t(1)));
        assert!(!e.is_set_up());
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut e = engine(PpmKind::PassThrough);
        e.register_target_query("q", Pattern::single("t", t(0)));
        e.setup().unwrap();
        let mut rng = DpRng::seed_from(3);
        let narrow = WindowedIndicators::new(vec![IndicatorVector::empty(2)]);
        assert!(matches!(
            e.serve(&narrow, &mut rng),
            Err(CoreError::WidthMismatch {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn widening_requires_history_and_setup() {
        let mut e = engine(PpmKind::Uniform { eps: eps(1.0) });
        e.register_private_pattern(Pattern::seq("p", vec![t(0), t(1)]).unwrap());
        assert!(matches!(
            e.widen_for_correlates(1.5, eps(1.0)),
            Err(CoreError::MissingHistory)
        ));
        e.provide_history(windows());
        assert!(matches!(
            e.widen_for_correlates(1.5, eps(1.0)),
            Err(CoreError::NotSetUp)
        ));
    }

    #[test]
    fn widening_extends_the_flip_table() {
        use pdp_stream::IndicatorVector;
        let mut e = engine(PpmKind::Uniform { eps: eps(1.0) });
        e.register_private_pattern(Pattern::single("p", t(0)));
        // history where t(2) rides along with t(0)
        let mut history = Vec::new();
        for k in 0..60 {
            let mut present = Vec::new();
            if k % 2 == 0 {
                present.extend([t(0), t(2)]);
            }
            if k % 7 == 0 {
                present.push(t(2));
            }
            history.push(IndicatorVector::from_present(present, 4));
        }
        e.provide_history(WindowedIndicators::new(history));
        e.setup().unwrap();
        assert_eq!(e.pipeline().unwrap().flip_table().prob(t(2)).value(), 0.0);
        let correlates = e.widen_for_correlates(1.3, eps(1.0)).unwrap();
        assert!(correlates.iter().any(|c| c.ty == t(2)));
        let table = e.pipeline().unwrap().flip_table();
        assert!(table.prob(t(2)).value() > 0.0);
        assert_eq!(e.pipeline().unwrap().name(), "uniform+correlates");
        // declared element keeps its protection
        assert!(table.prob(t(0)).value() > 0.0);
    }

    #[test]
    fn protected_view_spends_budget() {
        let mut e = engine(PpmKind::Uniform { eps: eps(2.0) });
        let p = e.register_private_pattern(Pattern::single("p", t(0)));
        e.setup().unwrap();
        let mut rng = DpRng::seed_from(4);
        let view = e.protected_view(&windows(), &mut rng).unwrap();
        assert_eq!(view.len(), 3);
        // 3 windows released, each charging the full eps = 2.0
        assert!((e.budget_spent(p).value() - 6.0).abs() < 1e-12);
        // non-private types pass through exactly
        for (w_in, w_out) in windows().iter().zip(view.iter()) {
            for ty in [t(1), t(2), t(3)] {
                assert_eq!(w_in.get(ty), w_out.get(ty));
            }
        }
    }
}
