//! Self-healing supervision for the sharded service: deterministic fault
//! injection, per-shard recovery, and graceful degradation.
//!
//! # The healing contract
//!
//! A supervised [`ShardedService`](crate::service::ShardedService) detects
//! a dead or poisoned shard worker at the next sync point (the fold that
//! precedes every batch, watermark, epoch, checkpoint or finish call) and
//! heals it **in place**, without disturbing the other shards' pipelines.
//! Which heal applies depends on what the fault destroyed:
//!
//! * **In-place respawn** — when the worker thread died but the shard's
//!   mutex is *clean* (e.g. a scripted kill severed its channel), the
//!   in-service state mirror is still authoritative: jobs that could not
//!   be submitted run inline under the same lock, in the same order, and
//!   a fresh worker thread is spawned at the sync point. No durability
//!   artifacts are consulted; the output is bit-for-bit the fault-free
//!   output.
//! * **Checkpoint + WAL-tail replay** — when the worker panicked while
//!   holding the lock the mutex is *poisoned* and the in-memory shard may
//!   be mid-job, so it cannot be trusted. The supervisor rebuilds that one
//!   shard from the last checkpoint plus an inline replay of the WAL tail
//!   (both paths come from [`SupervisorConfig`]), swaps the rebuilt state
//!   in behind a fresh lock, and re-derives the releases the crashed
//!   round lost so settlement — deliveries, ledger spends, merge rows —
//!   proceeds exactly as in the fault-free run. Because the WAL records
//!   every accepted input *before* the round that applies it is submitted,
//!   the replay is always exactly as current as the live service.
//! * **Graceful degradation** — after a configurable number of heal
//!   attempts on one shard ([`SupervisorConfig::max_heal_attempts`]) the
//!   supervisor stops respawning workers and switches the whole service to
//!   inline (single-threaded) execution. Degradation preserves *all*
//!   semantics — the service's inline and parallel modes are bit-for-bit
//!   identical by construction — it only gives up thread-parallelism. The
//!   mode change is reported (a [`HealAction::Degraded`] event and the
//!   [`HealthReport::degraded`] flag), never silent, and the service keeps
//!   serving.
//!
//! Transient WAL append failures are retried with bounded backoff
//! ([`SupervisorConfig::wal_retry_limit`] /
//! [`SupervisorConfig::wal_retry_backoff`]) before a batch is rejected;
//! the retry count is surfaced in [`HealthReport::wal_retries`].
//!
//! # Deterministic fault injection
//!
//! Chaos scenarios are scripted as a [`FaultPlan`] — kill worker *k*
//! before round *r*, poison shard *k* before round *r*, fail the *n*-th
//! WAL append attempt, corrupt byte *b* of a checkpoint — and threaded
//! through the service with
//! [`inject_faults`](crate::service::ShardedService::inject_faults), so
//! every scenario is reproducible from a seed
//! ([`FaultPlan::from_seed`]). Worker kill/poison faults target worker
//! threads and are therefore no-ops in inline mode (the plan's WAL faults
//! still apply); a poison scheduled for a round that only `finish`
//! submits stays unfired, so scripted plans should target ingestion or
//! watermark rounds.

use std::path::Path;
use std::sync::Once;
use std::time::Duration;

use crate::error::CoreError;
use crate::service::splitmix64;

/// One scripted fault in a [`FaultPlan`].
///
/// Rounds are 1-based and count every pipeline round the service submits
/// (each `push_batch` and `advance_watermark` submits one round; `finish`
/// submits two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Sever worker `shard`'s job channel at the start of the call that
    /// submits round `before_round`, while the previous round may still
    /// be in flight. The worker drains already-queued jobs and exits; the
    /// shard's state mirror stays clean.
    KillWorker {
        /// Target shard.
        shard: usize,
        /// The round whose submission the kill precedes.
        before_round: u64,
    },
    /// Make worker `shard` panic while holding its shard lock, as the
    /// first job of round `before_round`. The mutex is genuinely
    /// poisoned; an unsupervised service surfaces
    /// [`CoreError::ShardPoisoned`], a supervised one rebuilds the shard
    /// from checkpoint + WAL tail.
    PoisonShard {
        /// Target shard.
        shard: usize,
        /// The round whose submission the poison job leads.
        before_round: u64,
    },
    /// Fail the `nth` WAL append *attempt* (1-based, counted across
    /// retries) before anything is written, simulating a transient I/O
    /// error. A retried attempt gets a fresh number, so a single scripted
    /// failure is transient by construction.
    WalAppendFailure {
        /// Which append attempt fails.
        nth: u64,
    },
    /// Corrupt one byte of a checkpoint artifact: XOR the byte at
    /// `offset` with `xor`. Applied on demand via
    /// [`FaultInjector::corrupt_checkpoint`], not by the service itself.
    CorruptCheckpointByte {
        /// Byte offset into the checkpoint file.
        offset: u64,
        /// Mask XORed into that byte (must be non-zero to corrupt).
        xor: u8,
    },
}

/// A deterministic, scripted schedule of faults.
///
/// Build one with the chainable constructors or derive a reproducible
/// random schedule from a seed with [`FaultPlan::from_seed`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a worker kill: sever `shard`'s job channel before round
    /// `before_round` is submitted.
    #[must_use]
    pub fn kill_worker(mut self, shard: usize, before_round: u64) -> Self {
        self.faults.push(Fault::KillWorker {
            shard,
            before_round,
        });
        self
    }

    /// Schedule a poison: worker `shard` panics while holding its lock as
    /// the first job of round `before_round`.
    #[must_use]
    pub fn poison_shard(mut self, shard: usize, before_round: u64) -> Self {
        self.faults.push(Fault::PoisonShard {
            shard,
            before_round,
        });
        self
    }

    /// Schedule a transient failure of the `nth` WAL append attempt.
    #[must_use]
    pub fn fail_wal_append(mut self, nth: u64) -> Self {
        self.faults.push(Fault::WalAppendFailure { nth });
        self
    }

    /// Schedule a single-byte checkpoint corruption (applied via
    /// [`FaultInjector::corrupt_checkpoint`]).
    #[must_use]
    pub fn corrupt_checkpoint_byte(mut self, offset: u64, xor: u8) -> Self {
        self.faults
            .push(Fault::CorruptCheckpointByte { offset, xor });
        self
    }

    /// Derive a reproducible random chaos schedule from a seed: one
    /// worker kill, one shard poison and one transient WAL failure,
    /// spread over `rounds` pipeline rounds and `shards` shards via the
    /// same splitmix64 chain the service uses for routing. Same seed,
    /// same plan — always.
    pub fn from_seed(seed: u64, rounds: u64, shards: usize) -> Self {
        let rounds = rounds.max(1);
        let shards = shards.max(1) as u64;
        let draw = |lane: u64| splitmix64(seed ^ splitmix64(lane));
        // keep the poison strictly after the kill so both fire even on
        // short schedules; WAL appends roughly track rounds.
        let kill_round = 1 + draw(1) % rounds;
        let poison_round = 1 + kill_round.max(draw(2) % rounds);
        Self::new()
            .kill_worker((draw(3) % shards) as usize, kill_round)
            .poison_shard((draw(4) % shards) as usize, poison_round.min(rounds))
            .fail_wal_append(1 + draw(5) % rounds)
    }

    /// The scripted faults, in schedule order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }
}

/// A worker-targeting fault that is due now (internal hand-off between
/// the injector and the service's round submission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DueFault {
    /// Sever the shard's job channel immediately.
    Kill {
        /// Target shard.
        shard: usize,
    },
    /// Lead the next eligible round with a poison job.
    Poison {
        /// Target shard.
        shard: usize,
    },
}

/// Executes a [`FaultPlan`]: the service consults it at every round
/// submission and WAL append attempt, and each fault fires exactly once.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: Vec<Fault>,
}

impl FaultInjector {
    /// Wrap a plan for execution.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan: plan.faults }
    }

    /// Remove and return the worker faults due at or before `round`
    /// (late-scheduled faults fire at the next submitted round rather
    /// than being lost).
    pub(crate) fn due_before_round(&mut self, round: u64) -> Vec<DueFault> {
        let mut due = Vec::new();
        self.plan.retain(|fault| match *fault {
            Fault::KillWorker {
                shard,
                before_round,
            } if before_round <= round => {
                due.push(DueFault::Kill { shard });
                false
            }
            Fault::PoisonShard {
                shard,
                before_round,
            } if before_round <= round => {
                due.push(DueFault::Poison { shard });
                false
            }
            _ => true,
        });
        due
    }

    /// Whether WAL append attempt number `nth` (1-based) is scripted to
    /// fail. Consumes the matching fault.
    pub(crate) fn wal_append_should_fail(&mut self, nth: u64) -> bool {
        let before = self.plan.len();
        self.plan
            .retain(|fault| !matches!(*fault, Fault::WalAppendFailure { nth: n } if n == nth));
        self.plan.len() != before
    }

    /// Apply every scripted [`Fault::CorruptCheckpointByte`] to the file
    /// at `path`, consuming them. Returns how many bytes were corrupted.
    /// Offsets beyond the file are ignored (the fault is still consumed).
    pub fn corrupt_checkpoint(&mut self, path: &Path) -> Result<usize, CoreError> {
        let mut corruptions = Vec::new();
        self.plan.retain(|fault| match *fault {
            Fault::CorruptCheckpointByte { offset, xor } => {
                corruptions.push((offset, xor));
                false
            }
            _ => true,
        });
        let mut applied = 0;
        if !corruptions.is_empty() {
            let mut bytes = std::fs::read(path).map_err(|e| {
                CoreError::Durability(format!("corrupt checkpoint {}: {e}", path.display()))
            })?;
            for (offset, xor) in corruptions {
                if let Some(byte) = bytes.get_mut(offset as usize) {
                    *byte ^= xor;
                    applied += 1;
                }
            }
            std::fs::write(path, bytes).map_err(|e| {
                CoreError::Durability(format!("corrupt checkpoint {}: {e}", path.display()))
            })?;
        }
        Ok(applied)
    }

    /// Faults that have not fired yet. A completed chaos run should end
    /// with zero remaining (inline runs keep their worker faults — they
    /// have no worker to target).
    pub fn remaining(&self) -> usize {
        self.plan.len()
    }
}

/// Supervision policy for a [`ShardedService`](crate::service::ShardedService):
/// enables in-place healing, WAL retry and graceful degradation. Without
/// it the service keeps its historical fail-fast behavior (typed errors,
/// no healing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Heals tolerated per shard before the service degrades to inline
    /// execution. The `max_heal_attempts + 1`-th fault on one shard
    /// triggers degradation.
    pub max_heal_attempts: u32,
    /// Retries (beyond the first attempt) for a failed WAL append before
    /// the batch is rejected.
    pub wal_retry_limit: u32,
    /// Base backoff slept before each WAL retry, doubled per attempt.
    pub wal_retry_backoff: Duration,
    /// Path of the latest checkpoint, used to rebuild a poisoned shard.
    /// `None` disables the checkpoint-replay heal (poison then surfaces
    /// as a typed error).
    pub checkpoint: Option<std::path::PathBuf>,
    /// Path of the write-ahead log backing the service, replayed from the
    /// checkpoint's offset during a rebuild.
    pub wal: Option<std::path::PathBuf>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_heal_attempts: 3,
            wal_retry_limit: 3,
            wal_retry_backoff: Duration::from_millis(1),
            checkpoint: None,
            wal: None,
        }
    }
}

/// What a heal did, in the order the contract tries them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealAction {
    /// Worker thread respawned over the intact in-service state mirror.
    Respawned,
    /// Shard state rebuilt from the last checkpoint + WAL-tail replay,
    /// then a fresh worker spawned.
    Rebuilt,
    /// Heal budget exhausted: the service switched to inline execution
    /// and keeps serving single-threaded.
    Degraded,
}

/// One heal event, kept in submission order in [`HealthReport::events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealEvent {
    /// Shard that was healed (or whose fault triggered degradation).
    pub shard: usize,
    /// The last round submitted when the heal ran.
    pub round: u64,
    /// What the supervisor did.
    pub action: HealAction,
}

/// Liveness and heal history of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// Whether a live worker thread serves this shard. Always `true` in
    /// inline mode — the service thread itself is the executor.
    pub alive: bool,
    /// Whether the shard's mutex is currently poisoned (only possible
    /// when an unsupervised heal was refused).
    pub poisoned: bool,
    /// How many times this shard has been healed.
    pub heals: u32,
}

/// Snapshot of the service's supervision state, from
/// [`health`](crate::service::ShardedService::health).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// Whether the service currently executes rounds on worker threads.
    pub parallel: bool,
    /// Whether the supervisor gave up on parallelism after exhausting a
    /// shard's heal budget.
    pub degraded: bool,
    /// WAL append retries performed so far.
    pub wal_retries: u64,
    /// Total WAL append attempts (including retries).
    pub wal_appends: u64,
    /// Per-shard liveness and heal counts.
    pub shards: Vec<ShardHealth>,
    /// Every heal performed, in order.
    pub events: Vec<HealEvent>,
}

impl HealthReport {
    /// True when every shard is alive, nothing is poisoned and the
    /// service has not degraded.
    pub fn all_healthy(&self) -> bool {
        !self.degraded && self.shards.iter().all(|s| s.alive && !s.poisoned)
    }
}

/// Panic payload of a scripted [`Fault::PoisonShard`] job: poisoning a
/// `std::sync::Mutex` requires a real unwind while the guard is held, so
/// the injected job panics with this marker value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoisonPill;

/// Install (once) a panic hook that suppresses the default stderr report
/// for [`PoisonPill`] panics and delegates everything else to the
/// previous hook. Chaos tests call this so scripted poisons do not spam
/// the test output; real panics still print.
pub fn quiet_poison_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<PoisonPill>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_build_and_report() {
        let plan = FaultPlan::new()
            .kill_worker(1, 3)
            .poison_shard(0, 5)
            .fail_wal_append(2)
            .corrupt_checkpoint_byte(16, 0x40);
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert!(matches!(
            plan.faults()[0],
            Fault::KillWorker {
                shard: 1,
                before_round: 3
            }
        ));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        let a = FaultPlan::from_seed(41, 6, 3);
        let b = FaultPlan::from_seed(41, 6, 3);
        assert_eq!(a, b, "same seed must give the same plan");
        let c = FaultPlan::from_seed(42, 6, 3);
        assert_ne!(a, c, "different seeds should differ");
        for fault in a.faults() {
            match *fault {
                Fault::KillWorker {
                    shard,
                    before_round,
                }
                | Fault::PoisonShard {
                    shard,
                    before_round,
                } => {
                    assert!(shard < 3);
                    assert!((1..=6).contains(&before_round));
                }
                Fault::WalAppendFailure { nth } => assert!((1..=6).contains(&nth)),
                Fault::CorruptCheckpointByte { .. } => {}
            }
        }
    }

    #[test]
    fn injector_fires_each_fault_once() {
        let mut inj = FaultInjector::new(
            FaultPlan::new()
                .kill_worker(0, 2)
                .poison_shard(1, 4)
                .fail_wal_append(3),
        );
        assert!(inj.due_before_round(1).is_empty());
        assert_eq!(inj.due_before_round(2), vec![DueFault::Kill { shard: 0 }]);
        assert!(inj.due_before_round(2).is_empty(), "kill fires once");
        // a late fault fires at the next round instead of being lost
        assert_eq!(inj.due_before_round(9), vec![DueFault::Poison { shard: 1 }]);
        assert!(!inj.wal_append_should_fail(2));
        assert!(inj.wal_append_should_fail(3));
        assert!(!inj.wal_append_should_fail(3), "wal fault fires once");
        assert_eq!(inj.remaining(), 0);
    }

    #[test]
    fn checkpoint_corruption_is_scripted() {
        let path = std::env::temp_dir().join(format!(
            "pdp-supervision-corrupt-{}.bin",
            std::process::id()
        ));
        std::fs::write(&path, [0u8, 1, 2, 3]).unwrap();
        let mut inj = FaultInjector::new(
            FaultPlan::new()
                .corrupt_checkpoint_byte(2, 0xFF)
                .corrupt_checkpoint_byte(400, 0xFF),
        );
        // the out-of-range offset is consumed but corrupts nothing
        assert_eq!(inj.corrupt_checkpoint(&path).unwrap(), 1);
        assert_eq!(inj.remaining(), 0);
        assert_eq!(std::fs::read(&path).unwrap(), vec![0u8, 1, 0xFD, 3]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn defaults_are_bounded() {
        let cfg = SupervisorConfig::default();
        assert!(cfg.max_heal_attempts >= 1);
        assert!(cfg.wal_retry_limit >= 1);
        assert!(cfg.checkpoint.is_none() && cfg.wal.is_none());
    }
}
