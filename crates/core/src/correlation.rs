//! Correlation discovery from historical data (§V-C future improvements).
//!
//! The paper's protection assumes data subjects declare private patterns
//! "perfectly" — but they are not privacy experts, and an event type that
//! is *statistically correlated* with a private pattern can leak it even
//! when the declared pattern's own events are perturbed. §V-C sketches the
//! fix: "estimate the correlations among events and patterns based on
//! historical data, which enables us to reveal most of the latent
//! relationships".
//!
//! This module implements that estimation: per-pair co-occurrence **lift**
//! over historical windows (`lift(a,b) = P(a∧b)/(P(a)·P(b))`), flagging of
//! event types whose lift against the private-pattern occurrence indicator
//! exceeds a threshold, and a widened flip table extending protection to
//! the flagged correlates.

use pdp_cep::{PatternId, PatternSet};
use pdp_dp::{Epsilon, FlipProb};
use pdp_stream::{EventType, WindowedIndicators};

use crate::error::CoreError;
use crate::protect::FlipTable;

/// A flagged latent correlate of a private pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Correlate {
    /// The correlated event type (not itself a declared private element).
    pub ty: EventType,
    /// Its lift against the private pattern's occurrence.
    pub lift: f64,
    /// The private pattern it correlates with.
    pub pattern: PatternId,
}

/// Empirical lift between two event types over historical windows.
///
/// Returns 1.0 (independence) when either marginal is degenerate (never /
/// always present) — a constant indicator carries no information to leak.
pub fn lift(windows: &WindowedIndicators, a: EventType, b: EventType) -> f64 {
    let n = windows.len();
    if n == 0 {
        return 1.0;
    }
    let mut ca = 0usize;
    let mut cb = 0usize;
    let mut cab = 0usize;
    for w in windows.iter() {
        let ha = w.get(a);
        let hb = w.get(b);
        ca += usize::from(ha);
        cb += usize::from(hb);
        cab += usize::from(ha && hb);
    }
    if ca == 0 || cb == 0 || ca == n || cb == n {
        return 1.0;
    }
    let pa = ca as f64 / n as f64;
    let pb = cb as f64 / n as f64;
    let pab = cab as f64 / n as f64;
    pab / (pa * pb)
}

/// Lift of an event type against a private pattern's *occurrence*
/// (conjunction of its elements) over historical windows.
pub fn pattern_lift(
    windows: &WindowedIndicators,
    patterns: &PatternSet,
    pattern: PatternId,
    ty: EventType,
) -> Result<f64, CoreError> {
    let p = patterns
        .get(pattern)
        .ok_or(CoreError::UnknownPattern(pattern.0))?;
    let elements: Vec<EventType> = p.distinct_types().into_iter().collect();
    let n = windows.len();
    if n == 0 {
        return Ok(1.0);
    }
    let mut cp = 0usize;
    let mut ct = 0usize;
    let mut cpt = 0usize;
    for w in windows.iter() {
        let occurred = elements.iter().all(|&e| w.get(e));
        let has_ty = w.get(ty);
        cp += usize::from(occurred);
        ct += usize::from(has_ty);
        cpt += usize::from(occurred && has_ty);
    }
    if cp == 0 || ct == 0 || cp == n || ct == n {
        return Ok(1.0);
    }
    let pp = cp as f64 / n as f64;
    let pt = ct as f64 / n as f64;
    let ppt = cpt as f64 / n as f64;
    Ok(ppt / (pp * pt))
}

/// Flag event types (outside the declared private elements) whose lift
/// against any private pattern exceeds `threshold` (> 1 means positive
/// correlation; 2.0 is a reasonable default for "clearly dependent").
pub fn find_correlates(
    windows: &WindowedIndicators,
    patterns: &PatternSet,
    private: &[PatternId],
    threshold: f64,
) -> Result<Vec<Correlate>, CoreError> {
    let mut declared = std::collections::BTreeSet::new();
    for &id in private {
        let p = patterns.get(id).ok_or(CoreError::UnknownPattern(id.0))?;
        declared.extend(p.distinct_types());
    }
    let mut out = Vec::new();
    for i in 0..windows.n_types() {
        let ty = EventType(i as u32);
        if declared.contains(&ty) {
            continue;
        }
        for &pid in private {
            let l = pattern_lift(windows, patterns, pid, ty)?;
            if l > threshold {
                out.push(Correlate {
                    ty,
                    lift: l,
                    pattern: pid,
                });
            }
        }
    }
    // strongest first
    out.sort_by(|a, b| {
        b.lift
            .partial_cmp(&a.lift)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

/// Widen a flip table so flagged correlates receive randomized response
/// with per-type budget `correlate_eps` (composed with any existing flip).
///
/// The correlates' noise is *additional* protection against latent leakage;
/// the declared patterns' pattern-level guarantee is unchanged
/// (post-composition only increases noise).
pub fn widen_protection(
    table: &FlipTable,
    correlates: &[Correlate],
    correlate_eps: Epsilon,
) -> Result<FlipTable, CoreError> {
    let mut widened = table.clone();
    let p = FlipProb::from_epsilon(correlate_eps);
    let mut seen = std::collections::BTreeSet::new();
    for c in correlates {
        if seen.insert(c.ty) {
            let existing = widened.prob(c.ty);
            widened.set_prob(c.ty, existing.compose(p))?;
        }
    }
    Ok(widened)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdp_cep::Pattern;
    use pdp_stream::IndicatorVector;

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    /// Windows where type 2 co-occurs with the private pattern {0,1}
    /// almost always, and type 3 is independent.
    fn fixture() -> (WindowedIndicators, PatternSet, PatternId) {
        let mut windows = Vec::new();
        for k in 0..100 {
            let mut present = Vec::new();
            if k % 2 == 0 {
                present.extend([t(0), t(1), t(2)]); // correlate rides along
            }
            if k % 3 == 0 {
                present.push(t(3)); // independent
            }
            if k % 7 == 0 {
                present.push(t(2)); // some solo appearances of the correlate
            }
            windows.push(IndicatorVector::from_present(present, 4));
        }
        let mut set = PatternSet::new();
        let private = set.insert(Pattern::seq("p", vec![t(0), t(1)]).unwrap());
        (WindowedIndicators::new(windows), set, private)
    }

    #[test]
    fn lift_detects_dependence_and_independence() {
        let (w, _, _) = fixture();
        assert!(lift(&w, t(0), t(2)) > 1.4, "lift {}", lift(&w, t(0), t(2)));
        let indep = lift(&w, t(0), t(3));
        assert!((indep - 1.0).abs() < 0.35, "independent lift {indep}");
        // degenerate marginals → 1.0
        assert_eq!(lift(&WindowedIndicators::new(vec![]), t(0), t(1)), 1.0);
    }

    #[test]
    fn pattern_lift_flags_the_rider() {
        let (w, set, private) = fixture();
        let l2 = pattern_lift(&w, &set, private, t(2)).unwrap();
        let l3 = pattern_lift(&w, &set, private, t(3)).unwrap();
        assert!(l2 > 1.4, "correlate lift {l2}");
        assert!(l3 < 1.4, "independent lift {l3}");
        assert!(pattern_lift(&w, &set, PatternId(9), t(0)).is_err());
    }

    #[test]
    fn find_correlates_excludes_declared_elements() {
        let (w, set, private) = fixture();
        let cs = find_correlates(&w, &set, &[private], 1.4).unwrap();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].ty, t(2));
        assert_eq!(cs[0].pattern, private);
        assert!(cs[0].lift > 1.4);
    }

    #[test]
    fn widen_protection_composes_noise_onto_correlates() {
        let (w, set, private) = fixture();
        let cs = find_correlates(&w, &set, &[private], 1.4).unwrap();
        let base = FlipTable::identity(4);
        let widened = widen_protection(&base, &cs, Epsilon::new(1.0).unwrap()).unwrap();
        assert!(widened.prob(t(2)).value() > 0.0);
        assert_eq!(widened.prob(t(3)).value(), 0.0);
        // widening an already-noisy slot composes (more noise)
        let twice = widen_protection(&widened, &cs, Epsilon::new(1.0).unwrap()).unwrap();
        assert!(twice.prob(t(2)).value() > widened.prob(t(2)).value());
    }

    #[test]
    fn correlates_sorted_by_strength() {
        // two correlates with different strengths
        let mut windows = Vec::new();
        for k in 0..90 {
            let mut present = Vec::new();
            if k % 2 == 0 {
                present.extend([t(0), t(1)]); // strong rider
                if k % 4 == 0 {
                    present.push(t(2)); // weaker rider
                }
            }
            if k % 9 == 0 {
                present.push(t(1));
            }
            if k % 5 == 0 {
                present.push(t(2));
            }
            windows.push(IndicatorVector::from_present(present, 3));
        }
        let mut set = PatternSet::new();
        let private = set.insert(Pattern::single("p", t(0)));
        let w = WindowedIndicators::new(windows);
        let cs = find_correlates(&w, &set, &[private], 1.05).unwrap();
        assert!(cs.len() >= 2);
        for pair in cs.windows(2) {
            assert!(pair[0].lift >= pair[1].lift);
        }
    }
}
