//! Typed consumer answers and the unified query registry.
//!
//! The paper's service phase answers *binary* continuous queries; §VII
//! sketches extensions to numerical and categorical answers. Before this
//! module, those extension queries ([`CountQuery`], [`CategoricalQuery`],
//! [`NoisyArgmax`]) were evaluated by hand outside the registered query
//! path — no stable id, no epoch compilation, no budget accounting.
//! Here they join the same registry as pattern queries:
//!
//! * [`Answer`] is the typed answer a release carries per registered
//!   query — one variant per query family, never a positional `bool`;
//! * [`QuerySpec`] is the registry's wire form: what the control plane
//!   stores append-only under a stable [`QueryId`] and compiles into
//!   each epoch plan;
//! * the [`Query`] trait unifies registration: anything that can compile
//!   itself to a [`QuerySpec`] (the extension query types implement it)
//!   registers through `ServiceBuilder::register_extension_query` /
//!   `ControlPlane::add_typed_query` exactly like a pattern query;
//! * `CompiledQuery` (crate-internal) is the per-epoch compiled form
//!   (type masks resolved, the exponential mechanism pre-built) evaluated
//!   inside the release path on the **protected** view only.
//!
//! **Statefulness.** `Count` and `Argmax` answers are trailing-window
//! aggregates, so each serving front keeps one [`QueryStateSet`]: a
//! rolling per-query hit history keyed by stable [`QueryId`] (ids survive
//! epoch transitions, so a query's trailing window is preserved across
//! `begin_epoch`). The state holds only *protected* detections —
//! post-processing, nothing to account.
//!
//! **Budget.** `Argmax` answers draw the exponential mechanism per
//! release with a dedicated budget, charged through the serving front's
//! query ledger (the same [`EpochLedger`](pdp_dp::EpochLedger) machinery
//! that meters pattern budgets meters these non-boolean queries). The
//! draw order is deterministic: after the flip plan is applied to a
//! window, each active `Argmax` query draws once, in [`QueryId`] order.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use pdp_cep::{PatternId, PatternSet, QueryId};
use pdp_dp::{DpRng, Epsilon, Exponential};
use pdp_stream::{IndicatorVector, TypeMask};

use crate::error::CoreError;
use crate::extensions::{CategoricalQuery, CountQuery, NoisyArgmax};

/// One typed answer, computed on the protected view of one window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// A binary pattern-detection answer (the paper's base query form).
    Bool(bool),
    /// A trailing-window detection count (§VII numerical answers).
    Count(usize),
    /// A categorical label (§VII categorical answers).
    Categorical(String),
    /// The (noisily, per shard) selected dominant candidate's label.
    Argmax(String),
}

impl Answer {
    /// The boolean coercion used by the legacy positional fields
    /// (`MergedRelease::answers_any`): `Bool` is itself, `Count` is
    /// "detected at least once in the horizon", label answers are
    /// `true` (a label is always produced).
    pub fn truthy(&self) -> bool {
        match self {
            Answer::Bool(b) => *b,
            Answer::Count(n) => *n > 0,
            Answer::Categorical(_) | Answer::Argmax(_) => true,
        }
    }

    /// The `Bool` payload, if this is a boolean answer.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Answer::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The `Count` payload, if this is a count answer.
    pub fn as_count(&self) -> Option<usize> {
        match self {
            Answer::Count(n) => Some(*n),
            _ => None,
        }
    }

    /// The label payload of `Categorical` / `Argmax` answers.
    pub fn as_label(&self) -> Option<&str> {
        match self {
            Answer::Categorical(l) | Answer::Argmax(l) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Bool(b) => write!(f, "{b}"),
            Answer::Count(n) => write!(f, "{n}"),
            Answer::Categorical(l) | Answer::Argmax(l) => write!(f, "{l}"),
        }
    }
}

/// The registry form of a consumer query: what a stable [`QueryId`] maps
/// to in the control plane's append-only registry, and what each epoch
/// plan compiles. Pattern references are resolved (and rejected if
/// dangling) at compile time, like every other plan input.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// "Is the target pattern detected in this window?" → [`Answer::Bool`].
    Pattern {
        /// The target pattern asked about.
        pattern: PatternId,
    },
    /// "In how many of the trailing `horizon` windows was the pattern
    /// detected?" → [`Answer::Count`].
    Count {
        /// The pattern being counted.
        pattern: PatternId,
        /// Trailing-window scope (≥ 1).
        horizon: usize,
    },
    /// "Which of these patterns describes the window?" (first detected
    /// option wins) → [`Answer::Categorical`].
    Categorical {
        /// Candidate categories in priority order: `(label, pattern)`.
        options: Vec<(String, PatternId)>,
        /// The label when no option's pattern is detected.
        fallback: String,
    },
    /// "Which candidate dominated the trailing `horizon` windows?",
    /// selected per release by the exponential mechanism with a dedicated
    /// per-release budget → [`Answer::Argmax`].
    Argmax {
        /// Candidate patterns: `(label, id)`.
        candidates: Vec<(String, PatternId)>,
        /// Trailing-window scope (≥ 1).
        horizon: usize,
        /// Per-release budget of the exponential draw.
        eps: Epsilon,
    },
}

impl QuerySpec {
    /// Every pattern id the spec references, in first-reference order
    /// (deduplicated) — the compile-time resolution and quality-model
    /// target set.
    pub fn referenced_patterns(&self) -> Vec<PatternId> {
        let mut out = Vec::new();
        let mut push = |id: PatternId| {
            if !out.contains(&id) {
                out.push(id);
            }
        };
        match self {
            QuerySpec::Pattern { pattern } | QuerySpec::Count { pattern, .. } => push(*pattern),
            QuerySpec::Categorical { options, .. } => {
                options.iter().for_each(|(_, id)| push(*id));
            }
            QuerySpec::Argmax { candidates, .. } => {
                candidates.iter().for_each(|(_, id)| push(*id));
            }
        }
        out
    }
}

/// Anything registrable as a consumer query: compiles itself to the
/// registry's [`QuerySpec`] form. Implemented by the §VII extension query
/// types, so one `register_extension_query` call covers them all —
/// pattern queries keep their dedicated registration path (they also
/// insert the pattern itself).
pub trait Query {
    /// The registry form of this query.
    fn spec(&self) -> QuerySpec;
}

impl Query for CountQuery {
    fn spec(&self) -> QuerySpec {
        QuerySpec::Count {
            pattern: self.pattern,
            horizon: self.horizon,
        }
    }
}

impl Query for CategoricalQuery {
    fn spec(&self) -> QuerySpec {
        QuerySpec::Categorical {
            options: self.options.clone(),
            fallback: self.fallback.clone(),
        }
    }
}

/// A registered form of [`NoisyArgmax`]: the standalone type selects over
/// an explicit window history with an explicit budget per call; the
/// registered form fixes a trailing horizon and a per-release budget so
/// the release path can answer (and charge) it continuously.
#[derive(Debug, Clone, PartialEq)]
pub struct ArgmaxQuery {
    /// The candidate set.
    pub inner: NoisyArgmax,
    /// Trailing-window scope of the utility counts (≥ 1).
    pub horizon: usize,
    /// Budget of each release's exponential draw.
    pub eps: Epsilon,
}

impl ArgmaxQuery {
    /// Build; the horizon must be at least 1 (the candidate set is
    /// validated by [`NoisyArgmax::new`]).
    pub fn new(inner: NoisyArgmax, horizon: usize, eps: Epsilon) -> Result<Self, CoreError> {
        if horizon == 0 {
            return Err(CoreError::InvalidQuery(
                "argmax horizon must be at least 1".into(),
            ));
        }
        Ok(ArgmaxQuery {
            inner,
            horizon,
            eps,
        })
    }
}

impl Query for ArgmaxQuery {
    fn spec(&self) -> QuerySpec {
        QuerySpec::Argmax {
            candidates: self.inner.candidates.clone(),
            horizon: self.horizon,
            eps: self.eps,
        }
    }
}

/// Upper bound on `Categorical` options / `Argmax` candidates per query:
/// trailing hit histories are packed into one `u64` word per window.
pub const MAX_QUERY_CANDIDATES: usize = 64;

/// One epoch's compiled form of a [`QuerySpec`]: pattern references
/// resolved to word-level [`TypeMask`]s, the exponential mechanism
/// pre-built. Evaluation per window is allocation-free except for label
/// answers.
#[derive(Debug, Clone)]
pub(crate) enum CompiledQuery {
    Bool {
        mask: TypeMask,
    },
    Count {
        mask: TypeMask,
        horizon: usize,
    },
    Categorical {
        options: Vec<(String, TypeMask)>,
        fallback: String,
    },
    Argmax {
        candidates: Vec<(String, TypeMask)>,
        horizon: usize,
        eps: Epsilon,
        mechanism: Exponential,
    },
}

impl CompiledQuery {
    /// Resolve one spec against the epoch's pattern registry.
    pub(crate) fn compile(
        spec: &QuerySpec,
        patterns: &PatternSet,
        n_types: usize,
    ) -> Result<Self, CoreError> {
        let mask_of = |id: PatternId| {
            patterns
                .get(id)
                .map(|p| p.type_mask(n_types))
                .ok_or(CoreError::UnknownPattern(id.0))
        };
        let labelled = |pairs: &[(String, PatternId)]| {
            if pairs.is_empty() {
                return Err(CoreError::InvalidQuery(
                    "label queries need at least one candidate".into(),
                ));
            }
            if pairs.len() > MAX_QUERY_CANDIDATES {
                return Err(CoreError::InvalidQuery(format!(
                    "at most {MAX_QUERY_CANDIDATES} candidates per query, got {}",
                    pairs.len()
                )));
            }
            pairs
                .iter()
                .map(|(label, id)| Ok((label.clone(), mask_of(*id)?)))
                .collect::<Result<Vec<_>, CoreError>>()
        };
        Ok(match spec {
            QuerySpec::Pattern { pattern } => CompiledQuery::Bool {
                mask: mask_of(*pattern)?,
            },
            QuerySpec::Count { pattern, horizon } => {
                if *horizon == 0 {
                    return Err(CoreError::InvalidQuery(
                        "count horizon must be at least 1".into(),
                    ));
                }
                CompiledQuery::Count {
                    mask: mask_of(*pattern)?,
                    horizon: *horizon,
                }
            }
            QuerySpec::Categorical { options, fallback } => CompiledQuery::Categorical {
                options: labelled(options)?,
                fallback: fallback.clone(),
            },
            QuerySpec::Argmax {
                candidates,
                horizon,
                eps,
            } => {
                if *horizon == 0 {
                    return Err(CoreError::InvalidQuery(
                        "argmax horizon must be at least 1".into(),
                    ));
                }
                CompiledQuery::Argmax {
                    candidates: labelled(candidates)?,
                    horizon: *horizon,
                    eps: *eps,
                    // utility = trailing detection count; one event changes
                    // any candidate's count by at most 1
                    mechanism: Exponential::new(*eps, 1.0).map_err(CoreError::Dp)?,
                }
            }
        })
    }

    /// The per-release budget this query charges (argmax only).
    pub(crate) fn charge(&self) -> Option<Epsilon> {
        match self {
            CompiledQuery::Argmax { eps, .. } => Some(*eps),
            _ => None,
        }
    }

    /// Answer one protected window. Only the stateful kinds (count,
    /// argmax) touch `states` — boolean and categorical queries stay off
    /// the ring map entirely, keeping the pure-boolean hot path free of
    /// hash lookups. `rng` drives the argmax draw; when absent
    /// (population-level merged evaluation) the plain argmax is taken
    /// instead — the input is already protected, so the noiseless
    /// selection is post-processing (ties break toward the earlier
    /// candidate).
    pub(crate) fn answer(
        &self,
        protected: &IndicatorVector,
        id: QueryId,
        states: &mut QueryStateSet,
        rng: Option<&mut DpRng>,
    ) -> Answer {
        match self {
            CompiledQuery::Bool { mask } => Answer::Bool(mask.matches(protected)),
            CompiledQuery::Count { mask, horizon } => {
                let state = states.ring(id);
                push_hits(state, *horizon, u64::from(mask.matches(protected)));
                Answer::Count(state.iter().map(|w| w.count_ones() as usize).sum())
            }
            CompiledQuery::Categorical { options, fallback } => Answer::Categorical(
                options
                    .iter()
                    .find(|(_, mask)| mask.matches(protected))
                    .map(|(label, _)| label.clone())
                    .unwrap_or_else(|| fallback.clone()),
            ),
            CompiledQuery::Argmax {
                candidates,
                horizon,
                mechanism,
                ..
            } => {
                let state = states.ring(id);
                let mut hits = 0u64;
                for (i, (_, mask)) in candidates.iter().enumerate() {
                    hits |= u64::from(mask.matches(protected)) << i;
                }
                push_hits(state, *horizon, hits);
                let utilities: Vec<f64> = (0..candidates.len())
                    .map(|i| state.iter().filter(|&&w| w & (1u64 << i) != 0).count() as f64)
                    .collect();
                let idx = match rng {
                    Some(rng) => mechanism
                        .select(&utilities, rng)
                        .expect("candidates verified non-empty"),
                    // deterministic population-level fold: plain argmax,
                    // first candidate wins ties
                    None => utilities
                        .iter()
                        .enumerate()
                        .rev()
                        .max_by(|(_, a), (_, b)| a.total_cmp(b))
                        .map(|(i, _)| i)
                        .expect("candidates verified non-empty"),
                };
                Answer::Argmax(candidates[idx].0.clone())
            }
        }
    }
}

/// Push one window's candidate-hit word into a trailing ring of capacity
/// `horizon`.
fn push_hits(state: &mut VecDeque<u64>, horizon: usize, hits: u64) {
    if state.len() == horizon {
        state.pop_front();
    }
    state.push_back(hits);
}

/// The rolling trailing-window state of one serving front's stateful
/// queries, keyed by stable [`QueryId`] so a query's trailing window
/// survives epoch transitions. Holds only protected detections.
#[derive(Debug, Clone, Default)]
pub struct QueryStateSet {
    rings: HashMap<QueryId, VecDeque<u64>>,
}

impl QueryStateSet {
    /// An empty state set (fresh front, no windows answered yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// The ring of `query`, created on first use.
    pub(crate) fn ring(&mut self, query: QueryId) -> &mut VecDeque<u64> {
        self.rings.entry(query).or_default()
    }

    /// Plain-data snapshot: each query's trailing hit-word ring (front to
    /// back), sorted by query id so equal states snapshot identically.
    pub fn snapshot(&self) -> Vec<(QueryId, Vec<u64>)> {
        let mut rings: Vec<(QueryId, Vec<u64>)> = self
            .rings
            .iter()
            .map(|(&id, ring)| (id, ring.iter().copied().collect()))
            .collect();
        rings.sort_by_key(|(id, _)| *id);
        rings
    }

    /// Rebuild a state set from a [`QueryStateSet::snapshot`].
    pub fn restore(rings: Vec<(QueryId, Vec<u64>)>) -> Self {
        QueryStateSet {
            rings: rings
                .into_iter()
                .map(|(id, ring)| (id, ring.into()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdp_cep::Pattern;
    use pdp_stream::EventType;

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    fn set() -> (PatternSet, PatternId, PatternId) {
        let mut s = PatternSet::new();
        let a = s.insert(Pattern::single("a", t(0)));
        let b = s.insert(Pattern::single("b", t(1)));
        (s, a, b)
    }

    fn w(present: &[u32]) -> IndicatorVector {
        IndicatorVector::from_present(present.iter().map(|&i| t(i)), 3)
    }

    #[test]
    fn answer_coercions_and_display() {
        assert!(Answer::Bool(true).truthy());
        assert!(!Answer::Bool(false).truthy());
        assert!(!Answer::Count(0).truthy());
        assert!(Answer::Count(2).truthy());
        assert!(Answer::Categorical("x".into()).truthy());
        assert_eq!(Answer::Bool(true).as_bool(), Some(true));
        assert_eq!(Answer::Count(3).as_count(), Some(3));
        assert_eq!(Answer::Argmax("y".into()).as_label(), Some("y"));
        assert_eq!(Answer::Count(3).as_label(), None);
        assert_eq!(Answer::Categorical("busy".into()).to_string(), "busy");
        assert_eq!(Answer::Count(7).to_string(), "7");
    }

    #[test]
    fn specs_report_referenced_patterns_deduped() {
        let (_, a, b) = set();
        let spec = QuerySpec::Categorical {
            options: vec![("x".into(), a), ("y".into(), b), ("z".into(), a)],
            fallback: "f".into(),
        };
        assert_eq!(spec.referenced_patterns(), vec![a, b]);
        assert_eq!(
            QuerySpec::Pattern { pattern: b }.referenced_patterns(),
            vec![b]
        );
    }

    #[test]
    fn extension_types_compile_to_their_specs() {
        let (_, a, b) = set();
        let count = CountQuery::new(a, 4).unwrap();
        assert_eq!(
            count.spec(),
            QuerySpec::Count {
                pattern: a,
                horizon: 4
            }
        );
        let cat = CategoricalQuery::new(vec![("x".into(), a)], "f").unwrap();
        assert!(matches!(cat.spec(), QuerySpec::Categorical { .. }));
        let eps = Epsilon::new(1.0).unwrap();
        let argmax = ArgmaxQuery::new(
            NoisyArgmax::new(vec![("x".into(), a), ("y".into(), b)]).unwrap(),
            3,
            eps,
        )
        .unwrap();
        assert!(matches!(
            argmax.spec(),
            QuerySpec::Argmax { horizon: 3, .. }
        ));
        assert!(matches!(
            ArgmaxQuery::new(NoisyArgmax::new(vec![("x".into(), a)]).unwrap(), 0, eps),
            Err(CoreError::InvalidQuery(_))
        ));
    }

    #[test]
    fn compiled_count_rolls_a_trailing_window() {
        let (patterns, a, _) = set();
        let q = CompiledQuery::compile(
            &QuerySpec::Count {
                pattern: a,
                horizon: 2,
            },
            &patterns,
            3,
        )
        .unwrap();
        let mut state = QueryStateSet::new();
        let hits = [&[0u32][..], &[], &[0], &[0]];
        let counts: Vec<usize> = hits
            .iter()
            .map(|present| {
                q.answer(&w(present), QueryId(0), &mut state, None)
                    .as_count()
                    .unwrap()
            })
            .collect();
        assert_eq!(counts, vec![1, 1, 1, 2]);
    }

    #[test]
    fn compiled_categorical_prefers_first_match() {
        let (patterns, a, b) = set();
        let q = CompiledQuery::compile(
            &QuerySpec::Categorical {
                options: vec![("a!".into(), a), ("b!".into(), b)],
                fallback: "none".into(),
            },
            &patterns,
            3,
        )
        .unwrap();
        let mut state = QueryStateSet::new();
        assert_eq!(
            q.answer(&w(&[0, 1]), QueryId(0), &mut state, None),
            Answer::Categorical("a!".into())
        );
        assert_eq!(
            q.answer(&w(&[1]), QueryId(0), &mut state, None),
            Answer::Categorical("b!".into())
        );
        assert_eq!(
            q.answer(&w(&[2]), QueryId(0), &mut state, None),
            Answer::Categorical("none".into())
        );
    }

    #[test]
    fn compiled_argmax_noiseless_fold_takes_plain_argmax() {
        let (patterns, a, b) = set();
        let q = CompiledQuery::compile(
            &QuerySpec::Argmax {
                candidates: vec![("a!".into(), a), ("b!".into(), b)],
                horizon: 4,
                eps: Epsilon::new(2.0).unwrap(),
            },
            &patterns,
            3,
        )
        .unwrap();
        assert_eq!(q.charge(), Some(Epsilon::new(2.0).unwrap()));
        let mut state = QueryStateSet::new();
        // b hits twice, a once → plain argmax picks b
        q.answer(&w(&[1]), QueryId(0), &mut state, None);
        q.answer(&w(&[0, 1]), QueryId(0), &mut state, None);
        let last = q.answer(&w(&[]), QueryId(0), &mut state, None);
        assert_eq!(last, Answer::Argmax("b!".into()));
        // ties break toward the earlier candidate (fresh ring, new id)
        let t0 = q.answer(&w(&[0, 1]), QueryId(1), &mut state, None);
        assert_eq!(t0, Answer::Argmax("a!".into()));
    }

    #[test]
    fn query_state_snapshot_round_trips() {
        let mut state = QueryStateSet::new();
        state.ring(QueryId(3)).extend([1u64, 2, 3]);
        state.ring(QueryId(1)).push_back(9);
        let snap = state.snapshot();
        assert_eq!(
            snap,
            vec![(QueryId(1), vec![9]), (QueryId(3), vec![1, 2, 3])]
        );
        let mut restored = QueryStateSet::restore(snap.clone());
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(
            restored
                .ring(QueryId(3))
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn compile_validates_inputs() {
        let (patterns, a, _) = set();
        assert!(matches!(
            CompiledQuery::compile(
                &QuerySpec::Pattern {
                    pattern: PatternId(9)
                },
                &patterns,
                3
            ),
            Err(CoreError::UnknownPattern(9))
        ));
        assert!(matches!(
            CompiledQuery::compile(
                &QuerySpec::Count {
                    pattern: a,
                    horizon: 0
                },
                &patterns,
                3
            ),
            Err(CoreError::InvalidQuery(_))
        ));
        assert!(matches!(
            CompiledQuery::compile(
                &QuerySpec::Categorical {
                    options: vec![],
                    fallback: "f".into()
                },
                &patterns,
                3
            ),
            Err(CoreError::InvalidQuery(_))
        ));
        let too_many: Vec<(String, PatternId)> = (0..65).map(|i| (format!("c{i}"), a)).collect();
        assert!(matches!(
            CompiledQuery::compile(
                &QuerySpec::Argmax {
                    candidates: too_many,
                    horizon: 1,
                    eps: Epsilon::ZERO
                },
                &patterns,
                3
            ),
            Err(CoreError::InvalidQuery(_))
        ));
    }
}
