//! # `pdp-core` — pattern-level ε-differential privacy (the paper's contribution)
//!
//! Implements §IV and §V of *"Differential Privacy for Protecting Private
//! Patterns in Data Streams"* (ICDE 2023):
//!
//! * [`neighbors`] — Def. 1 (in-pattern neighbors) and Def. 3 (pattern-level
//!   neighbors), with generators used by the DP verification tests;
//! * [`guarantee`] — Def. 4 (pattern-level ε-DP) and **Theorem 1**: a
//!   randomized response with flip probabilities `pᵢ ≤ 1/2` over a pattern's
//!   elements guarantees `Σᵢ ln((1−pᵢ)/pᵢ)`-pattern-level DP;
//! * [`distribution`] — per-element budget shares: the **uniform**
//!   distribution (Fig. 3) and the **adaptive** bidirectional stepwise
//!   Algorithm 1 driven by historical data;
//! * [`quality_model`] — closed-form and Monte-Carlo estimators of the
//!   quality metric `Q = α·Prec + (1−α)·Rec` under per-event flips;
//! * [`protect`] — the protection pipeline: flip tables composed across
//!   overlapping private patterns, applied **only** to events that correlate
//!   with private patterns;
//! * [`engine`] — the trusted CEP engine middleware of §III-A (Fig. 2);
//! * [`answer`] — typed consumer answers and the unified query registry:
//!   pattern queries and the §VII extension queries (count, categorical,
//!   argmax) share one id space, compile into every epoch plan, and are
//!   answered typed on the protected view inside the release path;
//! * [`sink`] — the consumer delivery surface: [`ReleaseSink`]
//!   subscriptions per stable [`QueryId`](pdp_cep::QueryId), id-keyed
//!   [`QueryAnswer`] records, and the default [`VecSink`] the legacy
//!   `BatchOutput` style is reimplemented on;
//! * [`streaming`] — the push-based service layer: [`StreamingEngine`]
//!   consumes events one at a time and releases protected windows online,
//!   through the same [`OnlineCore`] the batch engine adapts;
//! * [`service`] — the sharded multi-tenant deployment shape on top:
//!   subject-keyed batched ingestion with bounded out-of-order tolerance,
//!   hash partitioning across [`StreamingEngine`] shards, a global low
//!   watermark, per-subject budget ledgers, and population-level merged
//!   answers;
//! * [`control`] — the dynamic control plane: runtime subject/pattern/
//!   query churn staged as commands, compiled into immutable per-epoch
//!   plans that every shard activates deterministically on one window
//!   boundary, with the adaptive PPM re-run online at each transition
//!   and epoch-aware budget accounting;
//! * [`durability`] — crash consistency for the sharded service: full
//!   plain-data checkpoints captured at draining sync points plus a
//!   checksummed, sequence-numbered write-ahead log of accepted inputs;
//!   recovery loads the checkpoint and replays the WAL tail for
//!   bit-identical output;
//! * [`supervision`] — crash *resilience* on top: scripted deterministic
//!   fault injection ([`FaultPlan`]), in-place shard healing (worker
//!   respawn when the state mirror is clean, checkpoint + WAL-tail
//!   rebuild when it is poisoned), bounded WAL retry with backoff, and
//!   graceful degradation to inline execution with a [`HealthReport`].

pub mod adaptive;
pub mod answer;
pub mod control;
pub mod correlation;
pub mod distribution;
pub mod durability;
pub mod engine;
pub mod error;
pub mod extensions;
pub mod guarantee;
pub mod neighbors;
pub mod protect;
pub mod quality_model;
pub mod service;
pub mod sink;
pub mod streaming;
pub mod supervision;

pub use adaptive::{optimize_all, optimize_single, AdaptiveConfig, StepRule};
pub use answer::{Answer, ArgmaxQuery, Query, QuerySpec, QueryStateSet};
pub use control::{
    Command, CommandOutcome, ControlPlane, ControlPlaneConfig, ControlPlaneSnapshot, EpochPlan,
};
pub use correlation::{find_correlates, lift, pattern_lift, widen_protection, Correlate};
pub use distribution::BudgetDistribution;
pub use durability::{
    read_checkpoint, read_wal_from, recover_wal_prefix, replay_into, write_checkpoint,
    MergeRowSnapshot, MergeSnapshot, ServiceCheckpoint, ShardCheckpoint, ShardMetaSnapshot,
    WalRecord, WalWriter,
};
pub use engine::{PpmKind, ProtectedAnswer, TrustedEngine, TrustedEngineConfig};
pub use error::CoreError;
pub use extensions::{CategoricalQuery, CountQuery, NoisyArgmax};
pub use guarantee::{
    max_log_ratio, pattern_epsilon, satisfies_pattern_level_dp, uniform_flip_prob,
};
pub use neighbors::{
    in_pattern_neighbors, indicator_neighbors, is_in_pattern_neighbor, is_indicator_neighbor,
};
pub use protect::{FlipPlan, FlipTable, Mechanism, PipelineSnapshot, ProtectionPipeline};
pub use quality_model::{expected_quality, QualityModel};
pub use service::{
    BatchOutput, EpochTransition, KeyedEvent, MergedRelease, RouteTable, ServiceBuilder,
    ServiceConfig, ShardRelease, ShardedService, SubjectId,
};
pub use sink::{CountingSink, QueryAnswer, ReleaseSink, VecSink};
pub use streaming::{
    EngineSnapshot, OnlineCore, OnlineCoreSnapshot, QueryRef, StreamingConfig, StreamingEngine,
    WindowRelease,
};
pub use supervision::{
    quiet_poison_panics, Fault, FaultInjector, FaultPlan, HealAction, HealEvent, HealthReport,
    PoisonPill, ShardHealth, SupervisorConfig,
};
