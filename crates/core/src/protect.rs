//! The protection pipeline: per-event flip tables applied to windows.
//!
//! The defining property of a pattern-level PPM (§I, §IV): noise lands
//! **only** on events that correlate with private patterns; all other events
//! pass through untouched, preserving the quality of the rest of the stream.
//!
//! A [`FlipTable`] maps every event type to its flip probability: 0 for
//! uncorrelated types, and for types appearing in private patterns the
//! *serial composition* of the per-element flips of every private pattern
//! (and every repeated element) that contains them — the paper's treatment
//! of overlapping/repeating patterns, which "only brings more noise to the
//! private information".

use pdp_cep::{PatternId, PatternSet};
use pdp_dp::{DpRng, Epsilon, FlipProb};
use pdp_stream::{EventType, IndicatorVector, WindowedIndicators};

use crate::distribution::BudgetDistribution;
use crate::error::CoreError;

/// Per-event-type flip probabilities over a fixed type universe.
#[derive(Debug, Clone, PartialEq)]
pub struct FlipTable {
    probs: Vec<FlipProb>,
}

impl FlipTable {
    /// A table that never flips anything.
    pub fn identity(n_types: usize) -> Self {
        FlipTable {
            probs: vec![FlipProb::new(0.0).expect("0 is a valid flip probability"); n_types],
        }
    }

    /// Build from private patterns and their budget distributions.
    ///
    /// For each pattern element `eᵢ` with share `εᵢ`, the flip
    /// `pᵢ = 1/(1+e^{εᵢ})` is composed into the slot of `eᵢ`'s event type.
    pub fn from_distributions(
        patterns: &PatternSet,
        assignments: &[(PatternId, BudgetDistribution)],
        n_types: usize,
    ) -> Result<Self, CoreError> {
        let mut table = FlipTable::identity(n_types);
        for (id, dist) in assignments {
            let pattern = patterns.get(*id).ok_or(CoreError::UnknownPattern(id.0))?;
            if pattern.len() != dist.len() {
                return Err(CoreError::InvalidDistribution(format!(
                    "distribution has {} shares for pattern of length {}",
                    dist.len(),
                    pattern.len()
                )));
            }
            for (element, &share) in pattern.elements().iter().zip(dist.shares()) {
                if element.index() >= n_types {
                    return Err(CoreError::WidthMismatch {
                        expected: n_types,
                        got: element.index() + 1,
                    });
                }
                let p = FlipProb::from_epsilon(share);
                let slot = &mut table.probs[element.index()];
                *slot = slot.compose(p);
            }
        }
        Ok(table)
    }

    /// The flip probability of one event type.
    ///
    /// **Clamp-to-identity contract:** a type outside the table's width is
    /// answered with flip probability `0` — the same answer every
    /// *uncorrelated* in-range type gets. This is sound for reads (an
    /// unknown type is by definition not in any private pattern, so it is
    /// never perturbed) and keeps hot-path lookups infallible; it mirrors
    /// [`IndicatorVector::get`], which reports out-of-range types as
    /// absent. Writes are different: silently dropping a *protection
    /// request* would be a privacy bug, so [`FlipTable::set_prob`] errors
    /// on out-of-range types instead. Use [`FlipTable::try_prob`] when the
    /// caller needs to distinguish "uncorrelated" from "unknown type".
    pub fn prob(&self, ty: EventType) -> FlipProb {
        self.try_prob(ty)
            .unwrap_or(FlipProb::new(0.0).expect("0 is a valid flip probability"))
    }

    /// The flip probability of one event type, or `None` if `ty` lies
    /// outside the table's width (the checked companion of
    /// [`FlipTable::prob`]).
    pub fn try_prob(&self, ty: EventType) -> Option<FlipProb> {
        self.probs.get(ty.index()).copied()
    }

    /// Set the flip probability of one event type directly.
    pub fn set_prob(&mut self, ty: EventType, p: FlipProb) -> Result<(), CoreError> {
        match self.probs.get_mut(ty.index()) {
            Some(slot) => {
                *slot = p;
                Ok(())
            }
            None => Err(CoreError::WidthMismatch {
                expected: self.probs.len(),
                got: ty.index() + 1,
            }),
        }
    }

    /// Number of event types covered.
    pub fn width(&self) -> usize {
        self.probs.len()
    }

    /// Event types with non-zero flip probability (the "protected" types).
    pub fn protected_types(&self) -> Vec<EventType> {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.value() > 0.0)
            .map(|(i, _)| EventType(i as u32))
            .collect()
    }

    /// All flip probabilities, indexed by type id.
    pub fn probs(&self) -> &[FlipProb] {
        &self.probs
    }

    /// Perturb a single window in place — the legacy scalar path: one
    /// `f64` Bernoulli per protected type, in ascending type order. Kept
    /// for the baselines and as the reference the word-parallel
    /// [`FlipPlan`] is benchmarked and property-tested against; online
    /// service fronts use [`FlipTable::plan`] instead.
    pub fn apply_window(&self, window: &mut IndicatorVector, rng: &mut DpRng) {
        debug_assert_eq!(window.n_types(), self.probs.len());
        for (i, &p) in self.probs.iter().enumerate() {
            if p.value() > 0.0 {
                let ty = EventType(i as u32);
                let truth = window.get(ty);
                window.set(ty, p.apply(truth, rng));
            }
        }
    }

    /// Produce the protected view of a windowed history.
    pub fn apply(&self, windows: &WindowedIndicators, rng: &mut DpRng) -> WindowedIndicators {
        let mut out = windows.clone();
        for w in out.iter_mut() {
            self.apply_window(w, rng);
        }
        out
    }

    /// Precompile this table into its word-parallel execution plan (done
    /// once at setup; applied per release).
    pub fn plan(&self) -> FlipPlan {
        FlipPlan::compile(self)
    }
}

/// The precompiled, word-parallel execution plan of a [`FlipTable`].
///
/// Event types are grouped at setup into **probability classes** — one per
/// distinct non-zero flip probability — each holding a bit-packed lane mask
/// over the indicator words. Per released window, every class samples whole
/// 64-bit flip masks from the [`DpRng`] (one raw draw and one integer
/// threshold comparison per protected bit, via
/// [`DpRng::bernoulli_word`]) and XORs them into the window's words:
/// no per-bit branching, no float math, and uncorrelated types draw
/// nothing.
///
/// **Draw-order contract** (see `pdp_dp::rr` module docs): classes are
/// visited in order of their first (lowest) type id; within a class, words
/// ascend and bits within a word ascend by type id. The plan consumes
/// exactly one raw 64-bit draw per protected type per window — the same
/// count as the scalar [`FlipTable::apply_window`] path, in a different
/// order and interpretation, so seeded outputs differ from the legacy
/// per-bit path but are identical across every engine front using the
/// plan.
///
/// **Rebuilds.** A plan is immutable; reconfiguration never mutates one
/// in place. The dynamic control plane ([`crate::control`]) compiles a
/// *fresh* table + plan per epoch and swaps it into every engine at one
/// activation window, so the draw sequence stays a pure function of
/// (compiled plan, window) across churn.
#[derive(Debug, Clone, PartialEq)]
pub struct FlipPlan {
    n_types: usize,
    classes: Vec<FlipClass>,
}

/// One probability class of a [`FlipPlan`].
#[derive(Debug, Clone, PartialEq)]
struct FlipClass {
    /// Flip iff a raw 64-bit draw falls below this
    /// ([`FlipProb::threshold_u64`]).
    threshold: u64,
    /// The class's flip probability (for introspection and tests).
    prob: FlipProb,
    /// Lane mask per indicator word: set bits mark the types of this class.
    masks: Vec<u64>,
}

impl FlipPlan {
    /// Group `table`'s types by distinct flip probability.
    fn compile(table: &FlipTable) -> Self {
        let n_types = table.width();
        let n_words = pdp_stream::words_for(n_types);
        let mut classes: Vec<FlipClass> = Vec::new();
        for (i, p) in table.probs().iter().enumerate() {
            if p.value() <= 0.0 {
                continue;
            }
            // classes keyed by exact probability bits, in first-occurrence
            // order (ascending first type id) — part of the draw-order
            // contract
            let class = match classes
                .iter_mut()
                .find(|c| c.prob.value().to_bits() == p.value().to_bits())
            {
                Some(c) => c,
                None => {
                    classes.push(FlipClass {
                        threshold: p.threshold_u64(),
                        prob: *p,
                        masks: vec![0; n_words],
                    });
                    classes.last_mut().expect("just pushed")
                }
            };
            class.masks[i / 64] |= 1u64 << (i % 64);
        }
        FlipPlan { n_types, classes }
    }

    /// Width of the type universe this plan perturbs.
    pub fn width(&self) -> usize {
        self.n_types
    }

    /// Number of distinct probability classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of protected types (raw draws consumed per window).
    pub fn n_protected(&self) -> usize {
        self.classes
            .iter()
            .map(|c| {
                c.masks
                    .iter()
                    .map(|m| m.count_ones() as usize)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Perturb a single window in place, word-parallel.
    #[inline]
    pub fn apply_window(&self, window: &mut IndicatorVector, rng: &mut DpRng) {
        debug_assert_eq!(window.n_types(), self.n_types);
        for class in &self.classes {
            for (w, &lanes) in class.masks.iter().enumerate() {
                if lanes != 0 {
                    let flips = rng.bernoulli_word(class.threshold, lanes);
                    window.xor_word(w, flips);
                }
            }
        }
    }
}

/// A privacy-preserving mechanism over windowed indicator streams.
///
/// Both pattern-level PPMs and every baseline implement this, which is what
/// lets the experiment harness sweep them uniformly.
pub trait Mechanism {
    /// Short display name ("uniform", "adaptive", "bd", …).
    fn name(&self) -> String;

    /// The protected view of the stream.
    fn protect(&self, windows: &WindowedIndicators, rng: &mut DpRng) -> WindowedIndicators;
}

/// The pattern-level protection pipeline: a flip table plus the
/// distributions that produced it, with the table's word-parallel
/// [`FlipPlan`] compiled once at construction.
#[derive(Debug, Clone)]
pub struct ProtectionPipeline {
    label: String,
    table: FlipTable,
    plan: FlipPlan,
    assignments: Vec<(PatternId, BudgetDistribution)>,
}

impl ProtectionPipeline {
    /// The uniform PPM (§V-A): every private pattern's budget is split
    /// evenly over its elements.
    pub fn uniform(
        patterns: &PatternSet,
        private: &[PatternId],
        eps: Epsilon,
        n_types: usize,
    ) -> Result<Self, CoreError> {
        let assignments = private
            .iter()
            .map(|&id| {
                let p = patterns.get(id).ok_or(CoreError::UnknownPattern(id.0))?;
                Ok((id, BudgetDistribution::uniform(eps, p.len())?))
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Self::from_assignments("uniform", patterns, assignments, n_types)
    }

    /// A pipeline from explicit distributions (the adaptive PPM builds its
    /// optimized distributions and passes them here).
    pub fn from_assignments(
        label: &str,
        patterns: &PatternSet,
        assignments: Vec<(PatternId, BudgetDistribution)>,
        n_types: usize,
    ) -> Result<Self, CoreError> {
        let table = FlipTable::from_distributions(patterns, &assignments, n_types)?;
        Ok(Self::from_table(label, table, assignments))
    }

    /// A pipeline wrapping an explicit flip table (used when a table is
    /// post-processed, e.g. widened with latent correlates).
    pub fn from_table(
        label: &str,
        table: FlipTable,
        assignments: Vec<(PatternId, BudgetDistribution)>,
    ) -> Self {
        let plan = table.plan();
        ProtectionPipeline {
            label: label.to_owned(),
            table,
            plan,
            assignments,
        }
    }

    /// The flip table in force.
    pub fn flip_table(&self) -> &FlipTable {
        &self.table
    }

    /// The table's precompiled word-parallel execution plan.
    pub fn plan(&self) -> &FlipPlan {
        &self.plan
    }

    /// The per-pattern distributions.
    pub fn assignments(&self) -> &[(PatternId, BudgetDistribution)] {
        &self.assignments
    }

    /// Total pattern-level budget of each protected pattern.
    pub fn budgets(&self) -> Vec<(PatternId, Epsilon)> {
        self.assignments
            .iter()
            .map(|(id, d)| (*id, d.total()))
            .collect()
    }

    /// Plain-data snapshot: the label, the per-type flip probabilities and
    /// the per-pattern distributions. The compiled [`FlipPlan`] is not
    /// captured — [`ProtectionPipeline::restore`] recompiles it
    /// deterministically from the table.
    pub fn snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot {
            label: self.label.clone(),
            probs: self.table.probs().iter().map(|p| p.value()).collect(),
            assignments: self.assignments.clone(),
        }
    }

    /// Rebuild a pipeline from a [`ProtectionPipeline::snapshot`] —
    /// identical flip table, identical word-parallel plan (the plan
    /// compile is a pure function of the table).
    pub fn restore(snapshot: PipelineSnapshot) -> Result<Self, CoreError> {
        let mut table = FlipTable::identity(snapshot.probs.len());
        for (i, &p) in snapshot.probs.iter().enumerate() {
            table.set_prob(
                EventType(i as u32),
                FlipProb::new(p).map_err(CoreError::Dp)?,
            )?;
        }
        Ok(Self::from_table(
            &snapshot.label,
            table,
            snapshot.assignments,
        ))
    }
}

/// The exact state of a [`ProtectionPipeline`], as plain data (see
/// [`ProtectionPipeline::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSnapshot {
    /// The mechanism label ([`Mechanism::name`]).
    pub label: String,
    /// Per-type flip probabilities in [`EventType`] order.
    pub probs: Vec<f64>,
    /// The per-pattern budget distributions.
    pub assignments: Vec<(PatternId, BudgetDistribution)>,
}

impl Mechanism for ProtectionPipeline {
    fn name(&self) -> String {
        self.label.clone()
    }

    /// Protects with the word-parallel [`FlipPlan`] — the same draw order
    /// as every online service front, so a batch replay under a shared
    /// seed reproduces the streaming and sharded paths bit-for-bit.
    fn protect(&self, windows: &WindowedIndicators, rng: &mut DpRng) -> WindowedIndicators {
        let mut out = windows.clone();
        for w in out.iter_mut() {
            self.plan.apply_window(w, rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdp_cep::Pattern;

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn patterns() -> (PatternSet, PatternId, PatternId) {
        let mut set = PatternSet::new();
        let a = set.insert(Pattern::seq("a", vec![t(0), t(1)]).unwrap());
        let b = set.insert(Pattern::seq("b", vec![t(1), t(2)]).unwrap());
        (set, a, b)
    }

    #[test]
    fn uncorrelated_types_never_flip() {
        let (set, a, _) = patterns();
        let pipeline = ProtectionPipeline::uniform(&set, &[a], eps(1.0), 5).unwrap();
        let table = pipeline.flip_table();
        assert_eq!(table.protected_types(), vec![t(0), t(1)]);
        assert_eq!(table.prob(t(3)).value(), 0.0);
        assert_eq!(table.prob(t(4)).value(), 0.0);

        // bits of uncorrelated types are passed through bit-for-bit, no
        // matter what the RNG draws for the protected types
        for seed in 0..32 {
            let mut rng = DpRng::seed_from(seed);
            let wi = WindowedIndicators::new(vec![IndicatorVector::from_present([t(3), t(4)], 5)]);
            let out = pipeline.protect(&wi, &mut rng);
            for ty in [t(2), t(3), t(4)] {
                assert_eq!(out.window(0).get(ty), wi.window(0).get(ty), "seed {seed}");
            }
        }
    }

    #[test]
    fn overlapping_patterns_compose_flips() {
        let (set, a, b) = patterns();
        // both patterns uniform with ε = 2 → each element share = 1
        let pipeline = ProtectionPipeline::uniform(&set, &[a, b], eps(2.0), 3).unwrap();
        let table = pipeline.flip_table();
        let p_share = FlipProb::from_epsilon(eps(1.0));
        // type 1 is in both patterns: composed flip
        let expected = p_share.compose(p_share);
        assert!((table.prob(t(1)).value() - expected.value()).abs() < 1e-12);
        // types 0 and 2 are in one pattern each
        assert!((table.prob(t(0)).value() - p_share.value()).abs() < 1e-12);
        assert!((table.prob(t(2)).value() - p_share.value()).abs() < 1e-12);
    }

    #[test]
    fn repeated_elements_compose_within_one_pattern() {
        let mut set = PatternSet::new();
        let id = set.insert(Pattern::seq("rr", vec![t(0), t(0)]).unwrap());
        let pipeline = ProtectionPipeline::uniform(&set, &[id], eps(2.0), 1).unwrap();
        let p_share = FlipProb::from_epsilon(eps(1.0));
        let expected = p_share.compose(p_share);
        assert!((pipeline.flip_table().prob(t(0)).value() - expected.value()).abs() < 1e-12);
    }

    #[test]
    fn distribution_length_must_match_pattern() {
        let (set, a, _) = patterns();
        let bad = vec![(a, BudgetDistribution::uniform(eps(1.0), 3).unwrap())];
        assert!(FlipTable::from_distributions(&set, &bad, 3).is_err());
    }

    #[test]
    fn unknown_pattern_rejected() {
        let (set, _, _) = patterns();
        assert!(ProtectionPipeline::uniform(&set, &[PatternId(9)], eps(1.0), 3).is_err());
    }

    #[test]
    fn type_universe_too_small_rejected() {
        let (set, a, _) = patterns();
        // pattern "a" uses types 0 and 1, but n_types = 1
        assert!(ProtectionPipeline::uniform(&set, &[a], eps(1.0), 1).is_err());
    }

    #[test]
    fn apply_flips_at_expected_rate() {
        let (set, a, _) = patterns();
        let pipeline = ProtectionPipeline::uniform(&set, &[a], eps(0.0), 3).unwrap();
        // ε = 0 → p = 1/2 on types 0 and 1
        let mut rng = DpRng::seed_from(77);
        let n = 20_000;
        let wi = WindowedIndicators::new(vec![IndicatorVector::empty(3); n]);
        let out = pipeline.protect(&wi, &mut rng);
        let ones = out.iter().filter(|w| w.get(t(0))).count();
        let rate = ones as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
        // type 2 untouched
        assert!(out.iter().all(|w| !w.get(t(2))));
    }

    #[test]
    fn budgets_report_totals() {
        let (set, a, b) = patterns();
        let pipeline = ProtectionPipeline::uniform(&set, &[a, b], eps(1.5), 3).unwrap();
        let budgets = pipeline.budgets();
        assert_eq!(budgets.len(), 2);
        assert!(budgets.iter().all(|(_, e)| (e.value() - 1.5).abs() < 1e-12));
        assert_eq!(pipeline.name(), "uniform");
    }

    #[test]
    fn plan_groups_types_by_probability_class() {
        let mut table = FlipTable::identity(130);
        let p1 = FlipProb::new(0.1).unwrap();
        let p2 = FlipProb::new(0.3).unwrap();
        table.set_prob(t(3), p1).unwrap();
        table.set_prob(t(70), p1).unwrap(); // same class, second word
        table.set_prob(t(5), p2).unwrap();
        let plan = table.plan();
        assert_eq!(plan.n_classes(), 2);
        assert_eq!(plan.n_protected(), 3);
        assert_eq!(plan.width(), 130);
    }

    #[test]
    fn plan_never_touches_uncorrelated_types() {
        let (set, a, _) = patterns();
        let pipeline = ProtectionPipeline::uniform(&set, &[a], eps(0.5), 5).unwrap();
        let plan = pipeline.flip_table().plan();
        for seed in 0..64 {
            let mut rng = DpRng::seed_from(seed);
            let mut w = IndicatorVector::from_present([t(3), t(4)], 5);
            plan.apply_window(&mut w, &mut rng);
            assert!(w.get(t(3)) && w.get(t(4)), "seed {seed}");
            assert!(!w.get(t(2)), "seed {seed}");
        }
    }

    #[test]
    fn plan_is_seed_deterministic() {
        let (set, a, b) = patterns();
        let pipeline = ProtectionPipeline::uniform(&set, &[a, b], eps(1.0), 4).unwrap();
        let plan = pipeline.flip_table().plan();
        let mut r1 = DpRng::seed_from(99);
        let mut r2 = DpRng::seed_from(99);
        for k in 0..200 {
            let mut w1 = IndicatorVector::from_present([t(k % 4)], 4);
            let mut w2 = w1.clone();
            plan.apply_window(&mut w1, &mut r1);
            plan.apply_window(&mut w2, &mut r2);
            assert_eq!(w1, w2, "window {k}");
        }
    }

    /// The tentpole's statistical contract: the word-sampling plan yields
    /// the exact per-bit marginal flip probability of sequential
    /// [`FlipProb`] draws — measured per type against the analytic `p`
    /// the scalar path also targets.
    #[test]
    fn plan_marginals_match_sequential_flip_prob_draws() {
        // three distinct probability classes across two words
        let mut table = FlipTable::identity(70);
        let probs = [(0u32, 0.5), (1, 0.2), (65, 0.2), (66, 0.05)];
        for &(ty, p) in &probs {
            table.set_prob(t(ty), FlipProb::new(p).unwrap()).unwrap();
        }
        let plan = table.plan();
        let n = 60_000;
        let mut rng_plan = DpRng::seed_from(7);
        let mut rng_seq = DpRng::seed_from(8);
        let mut plan_flips = std::collections::HashMap::new();
        let mut seq_flips = std::collections::HashMap::new();
        for _ in 0..n {
            let mut w = IndicatorVector::empty(70);
            plan.apply_window(&mut w, &mut rng_plan);
            for &(ty, _) in &probs {
                *plan_flips.entry(ty).or_insert(0usize) += w.get(t(ty)) as usize;
            }
            let mut w = IndicatorVector::empty(70);
            table.apply_window(&mut w, &mut rng_seq);
            for &(ty, _) in &probs {
                *seq_flips.entry(ty).or_insert(0usize) += w.get(t(ty)) as usize;
            }
        }
        for &(ty, p) in &probs {
            let plan_rate = plan_flips[&ty] as f64 / n as f64;
            let seq_rate = seq_flips[&ty] as f64 / n as f64;
            assert!(
                (plan_rate - p).abs() < 0.01,
                "type {ty}: plan rate {plan_rate} vs p {p}"
            );
            assert!(
                (plan_rate - seq_rate).abs() < 0.015,
                "type {ty}: plan {plan_rate} vs sequential {seq_rate}"
            );
        }
    }

    #[test]
    fn set_prob_bounds_checked() {
        let mut table = FlipTable::identity(2);
        assert!(table.set_prob(t(1), FlipProb::new(0.3).unwrap()).is_ok());
        assert!(table.set_prob(t(5), FlipProb::new(0.3).unwrap()).is_err());
        assert!((table.prob(t(1)).value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn read_path_contract_is_consistent() {
        let mut table = FlipTable::identity(2);
        table.set_prob(t(0), FlipProb::new(0.25).unwrap()).unwrap();
        // in-range reads: checked and unchecked agree
        assert_eq!(table.try_prob(t(0)), Some(FlipProb::new(0.25).unwrap()));
        assert_eq!(table.prob(t(0)).value(), 0.25);
        assert_eq!(table.try_prob(t(1)), Some(FlipProb::new(0.0).unwrap()));
        // out-of-range: reads clamp to identity (never flips), writes error
        assert_eq!(table.try_prob(t(9)), None);
        assert_eq!(table.prob(t(9)).value(), 0.0);
        assert!(matches!(
            table.set_prob(t(9), FlipProb::new(0.1).unwrap()),
            Err(CoreError::WidthMismatch {
                expected: 2,
                got: 10
            })
        ));
        // and the clamped read really means "identity": protecting a
        // window never touches anything out of range
        let mut rng = DpRng::seed_from(1);
        let mut window = IndicatorVector::empty(2);
        table.apply_window(&mut window, &mut rng);
        assert!(!window.get(t(9)));
    }
}
