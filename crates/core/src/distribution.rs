//! Budget distributions: how a pattern's total ε is shared among elements.
//!
//! §V-B: "we denote the privacy budget distributed to the i-th event as
//! `εᵢ = ln((1−pᵢ)/pᵢ)`. For a given total privacy budget ε, `Σεᵢ = ε`
//! holds." The uniform distribution (Fig. 3) gives each element `ε/m`; the
//! adaptive distribution (Algorithm 1, in [`crate::adaptive`]) reshapes the
//! shares using historical data.

use serde::{Deserialize, Serialize};

use pdp_dp::{Epsilon, FlipProb};

use crate::error::CoreError;

/// Per-element budget shares for one private pattern: `Σ shares = total`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetDistribution {
    total: Epsilon,
    shares: Vec<Epsilon>,
}

impl BudgetDistribution {
    /// The uniform distribution: every element gets `ε/m` (Fig. 3).
    pub fn uniform(total: Epsilon, m: usize) -> Result<Self, CoreError> {
        if m == 0 {
            return Err(CoreError::InvalidDistribution(
                "pattern length must be at least 1".into(),
            ));
        }
        Ok(BudgetDistribution {
            total,
            shares: total.split_even(m)?,
        })
    }

    /// A distribution from explicit shares; validates `εᵢ ∈ [0, ε]` and
    /// `Σεᵢ = ε` (within float tolerance).
    pub fn from_shares(total: Epsilon, shares: Vec<Epsilon>) -> Result<Self, CoreError> {
        if shares.is_empty() {
            return Err(CoreError::InvalidDistribution("no shares".into()));
        }
        let sum: f64 = shares.iter().map(|s| s.value()).sum();
        if (sum - total.value()).abs() > 1e-6 * total.value().max(1.0) {
            return Err(CoreError::InvalidDistribution(format!(
                "shares sum to {sum}, expected {}",
                total.value()
            )));
        }
        if shares.iter().any(|s| s.value() > total.value() + 1e-9) {
            return Err(CoreError::InvalidDistribution(
                "a share exceeds the total budget".into(),
            ));
        }
        Ok(BudgetDistribution { total, shares })
    }

    /// The total budget `ε`.
    pub fn total(&self) -> Epsilon {
        self.total
    }

    /// The per-element shares `ε₁ … εₘ`.
    pub fn shares(&self) -> &[Epsilon] {
        &self.shares
    }

    /// Pattern length `m`.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// Distributions are never empty.
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// The per-element flip probabilities `pᵢ = 1/(1 + e^{εᵢ})`.
    pub fn flip_probs(&self) -> Vec<FlipProb> {
        self.shares
            .iter()
            .map(|&e| FlipProb::from_epsilon(e))
            .collect()
    }

    /// Replace the shares (used by the adaptive optimizer); re-validates.
    pub fn with_shares(&self, shares: Vec<Epsilon>) -> Result<Self, CoreError> {
        Self::from_shares(self.total, shares)
    }

    /// Largest share.
    pub fn max_share(&self) -> Epsilon {
        self.shares
            .iter()
            .copied()
            .fold(Epsilon::ZERO, Epsilon::max)
    }

    /// Smallest share.
    pub fn min_share(&self) -> Epsilon {
        self.shares.iter().copied().fold(self.total, Epsilon::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn uniform_splits_evenly() {
        let d = BudgetDistribution::uniform(eps(3.0), 3).unwrap();
        assert_eq!(d.len(), 3);
        for s in d.shares() {
            assert!((s.value() - 1.0).abs() < 1e-12);
        }
        assert_eq!(d.total(), eps(3.0));
        assert!(BudgetDistribution::uniform(eps(1.0), 0).is_err());
    }

    #[test]
    fn from_shares_validates_sum() {
        assert!(BudgetDistribution::from_shares(eps(1.0), vec![eps(0.5), eps(0.5)]).is_ok());
        assert!(BudgetDistribution::from_shares(eps(1.0), vec![eps(0.5), eps(0.6)]).is_err());
        assert!(BudgetDistribution::from_shares(eps(1.0), vec![]).is_err());
    }

    #[test]
    fn from_shares_rejects_oversized_share() {
        // sum constraint alone wouldn't catch this if total were larger
        let r = BudgetDistribution::from_shares(eps(1.0), vec![eps(1.5)]);
        assert!(r.is_err());
    }

    #[test]
    fn flip_probs_match_shares() {
        let d = BudgetDistribution::from_shares(eps(1.5), vec![eps(1.0), eps(0.5)]).unwrap();
        let ps = d.flip_probs();
        assert!((ps[0].value() - 1.0 / (1.0 + 1.0f64.exp())).abs() < 1e-12);
        assert!((ps[1].value() - 1.0 / (1.0 + 0.5f64.exp())).abs() < 1e-12);
    }

    #[test]
    fn zero_total_distributes_halves() {
        let d = BudgetDistribution::uniform(Epsilon::ZERO, 2).unwrap();
        for p in d.flip_probs() {
            assert!((p.value() - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn min_max_shares() {
        let d = BudgetDistribution::from_shares(eps(1.0), vec![eps(0.2), eps(0.8)]).unwrap();
        assert!((d.max_share().value() - 0.8).abs() < 1e-12);
        assert!((d.min_share().value() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn with_shares_revalidates() {
        let d = BudgetDistribution::uniform(eps(1.0), 2).unwrap();
        assert!(d.with_shares(vec![eps(0.7), eps(0.3)]).is_ok());
        assert!(d.with_shares(vec![eps(0.7), eps(0.7)]).is_err());
    }

    proptest! {
        #[test]
        fn uniform_total_conserved(total in 0.0f64..20.0, m in 1usize..30) {
            let d = BudgetDistribution::uniform(eps(total), m).unwrap();
            let sum: f64 = d.shares().iter().map(|s| s.value()).sum();
            prop_assert!((sum - total).abs() < 1e-9);
            // Theorem 1 consistency: Σ ln((1−pᵢ)/pᵢ) = ε
            if total > 0.0 {
                let back: f64 = d.flip_probs().iter()
                    .map(|p| p.epsilon().unwrap().value())
                    .sum();
                prop_assert!((back - total).abs() < 1e-6);
            }
        }
    }
}
