//! Pattern-level ε-DP (Def. 4) and Theorem 1.
//!
//! **Def. 4.** A mechanism `M` over pattern streams satisfies pattern-level
//! ε-DP of pattern type `P` iff for any pattern-level neighbors `S`, `S′`
//! and any response set `R`: `Pr[M(S) ∈ R] ≤ e^ε · Pr[M(S′) ∈ R]`.
//!
//! **Theorem 1.** A randomized response with flip probabilities
//! `p₁, …, pₘ ≤ 1/2` over the elements of `P` guarantees
//! `Σᵢ ln((1−pᵢ)/pᵢ)`-pattern-level DP.
//!
//! This module provides the budget arithmetic both PPMs rely on, and an
//! *exact* verifier of the Def. 4 bound for small indicator universes
//! (used extensively in tests — no sampling, no flakiness).

use pdp_dp::{DpError, Epsilon, FlipProb, RandomizedResponse};
use pdp_stream::{EventType, IndicatorVector};

use crate::neighbors::indicator_neighbors;

/// Theorem 1: the pattern-level budget afforded by per-element flip
/// probabilities — `ε = Σᵢ ln((1−pᵢ)/pᵢ)`.
///
/// Errors with [`DpError::InvalidProbability`] if any `pᵢ = 0` (an
/// unprotected element means no finite pattern-level guarantee).
pub fn pattern_epsilon(probs: &[FlipProb]) -> Result<Epsilon, DpError> {
    let mut total = Epsilon::ZERO;
    for p in probs {
        match p.epsilon() {
            Some(e) => total += e,
            None => return Err(DpError::InvalidProbability(0.0)),
        }
    }
    Ok(total)
}

/// The flip probability of the uniform distribution (Fig. 3):
/// each of `m` elements receives `ε/m`, so `p = 1 / (1 + e^{ε/m})`.
pub fn uniform_flip_prob(eps: Epsilon, m: usize) -> Result<FlipProb, DpError> {
    if m == 0 {
        return Err(DpError::InvalidParameter(
            "pattern length must be at least 1".into(),
        ));
    }
    Ok(FlipProb::from_epsilon(eps / m as f64))
}

/// Exact verification of the Def. 4 likelihood-ratio bound on one window.
///
/// For every indicator-level neighbor of `window` with respect to
/// `pattern_types`, and every possible response vector, checks
/// `Pr[M(w) = r] ≤ e^ε · Pr[M(w′) = r]`. Exponential in width — intended
/// for tests on small universes (width ≤ 16).
///
/// `probs` must give the flip probability per event type (0 for
/// unperturbed types). Returns the largest observed `ln` likelihood ratio
/// across neighbor pairs, which must be ≤ `eps` for the guarantee to hold.
pub fn max_log_ratio(
    window: &IndicatorVector,
    pattern_types: &[EventType],
    probs: &[FlipProb],
) -> f64 {
    let mechanism = RandomizedResponse::new(probs.to_vec());
    let base_bits: Vec<bool> = window.to_bools();
    let base_dist = mechanism.output_distribution(&base_bits);
    let mut worst: f64 = 0.0;
    for neighbor in indicator_neighbors(window, pattern_types) {
        let n_bits: Vec<bool> = neighbor.to_bools();
        let n_dist = mechanism.output_distribution(&n_bits);
        for ((_, p1), (_, p2)) in base_dist.iter().zip(n_dist.iter()) {
            if *p1 > 0.0 && *p2 > 0.0 {
                let ratio = (p1 / p2).ln().abs();
                if ratio > worst {
                    worst = ratio;
                }
            } else if (*p1 > 0.0) != (*p2 > 0.0) {
                return f64::INFINITY;
            }
        }
    }
    worst
}

/// Convenience: does the mechanism satisfy pattern-level `eps`-DP on this
/// window (up to float tolerance)?
pub fn satisfies_pattern_level_dp(
    window: &IndicatorVector,
    pattern_types: &[EventType],
    probs: &[FlipProb],
    eps: Epsilon,
) -> bool {
    max_log_ratio(window, pattern_types, probs) <= eps.value() + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn theorem1_budget_sums() {
        let probs = vec![
            FlipProb::from_epsilon(eps(0.5)),
            FlipProb::from_epsilon(eps(1.0)),
            FlipProb::from_epsilon(eps(0.25)),
        ];
        let total = pattern_epsilon(&probs).unwrap();
        assert!((total.value() - 1.75).abs() < 1e-9);
    }

    #[test]
    fn unprotected_element_fails_theorem1() {
        let probs = vec![FlipProb::new(0.0).unwrap()];
        assert!(pattern_epsilon(&probs).is_err());
    }

    #[test]
    fn uniform_prob_matches_closed_form() {
        let p = uniform_flip_prob(eps(3.0), 3).unwrap();
        let expected = 1.0 / (1.0 + 1.0f64.exp());
        assert!((p.value() - expected).abs() < 1e-12);
        assert!(uniform_flip_prob(eps(1.0), 0).is_err());
    }

    #[test]
    fn uniform_mechanism_meets_its_budget_exactly() {
        // 3 event types, pattern = {0, 1}, ε = 1.2 split over 2 elements.
        let total = eps(1.2);
        let per = FlipProb::from_epsilon(total / 2.0);
        let probs = vec![per, per, FlipProb::new(0.0).unwrap()];
        let w = IndicatorVector::from_present([t(0), t(2)], 3);
        // Def. 3 neighbors change ONE pattern element, so the binding bound
        // is the per-element budget ε/2, not the total.
        let worst = max_log_ratio(&w, &[t(0), t(1)], &probs);
        assert!(
            (worst - 0.6).abs() < 1e-9,
            "worst log-ratio {worst}, expected 0.6"
        );
        assert!(satisfies_pattern_level_dp(&w, &[t(0), t(1)], &probs, total));
    }

    #[test]
    fn unprotected_pattern_bit_blows_the_bound() {
        // pattern covers type 0 but type 0 has p = 0 → infinite ratio
        let probs = vec![FlipProb::new(0.0).unwrap(), FlipProb::new(0.25).unwrap()];
        let w = IndicatorVector::from_present([t(0)], 2);
        let worst = max_log_ratio(&w, &[t(0)], &probs);
        assert!(worst.is_infinite());
        assert!(!satisfies_pattern_level_dp(&w, &[t(0)], &probs, eps(100.0)));
    }

    #[test]
    fn non_pattern_types_do_not_affect_ratio() {
        // heavy noise on type 1 (not in pattern) must not change the bound
        let base = vec![FlipProb::new(0.2).unwrap(), FlipProb::new(0.0).unwrap()];
        let noisy = vec![FlipProb::new(0.2).unwrap(), FlipProb::new(0.4).unwrap()];
        let w = IndicatorVector::from_present([t(0)], 2);
        let r1 = max_log_ratio(&w, &[t(0)], &base);
        let r2 = max_log_ratio(&w, &[t(0)], &noisy);
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn tighter_budget_means_smaller_ratio() {
        let w = IndicatorVector::from_present([t(0)], 2);
        let loose = vec![
            FlipProb::from_epsilon(eps(2.0)),
            FlipProb::new(0.0).unwrap(),
        ];
        let tight = vec![
            FlipProb::from_epsilon(eps(0.5)),
            FlipProb::new(0.0).unwrap(),
        ];
        assert!(max_log_ratio(&w, &[t(0)], &tight) < max_log_ratio(&w, &[t(0)], &loose));
    }

    #[test]
    fn half_probability_gives_zero_epsilon() {
        let probs = vec![FlipProb::HALF, FlipProb::HALF];
        let total = pattern_epsilon(&probs).unwrap();
        assert!(total.value().abs() < 1e-12);
        let w = IndicatorVector::from_present([t(0)], 2);
        // perfect indistinguishability
        assert!(max_log_ratio(&w, &[t(0), t(1)], &probs) < 1e-12);
    }
}
