//! Crash-consistent durability for the sharded service: checkpoints + WAL.
//!
//! The paper's engine is an online service over an unbounded stream; a
//! production deployment must survive a crash without violating the
//! accounting that backs the pattern-level ε-DP guarantee (Thm. 1): budget
//! *spent* must never be forgotten (forgetting spend would let a restarted
//! service re-release and overrun ε), and a restarted service must release
//! the **same** protected windows an uninterrupted one would have — the
//! randomized response draws are part of the released output, so recovery
//! has to resume the per-shard RNG streams mid-sequence, not reseed them.
//!
//! Two artifacts cooperate:
//!
//! * **checkpoint** ([`ServiceCheckpoint`]): a full plain-data image of
//!   every shard (reorder buffer, engine windows/ledgers/detector, RNG
//!   position), the service-side accounting (per-subject epoch ledgers,
//!   merge accumulators, epoch cores, control plane) and the WAL offset it
//!   is consistent with. Captured only at **draining sync points**
//!   ([`crate::service::ShardedService::checkpoint_into`] folds all
//!   in-flight rounds and flushes the outbox first), so a checkpoint never
//!   contains an in-flight round or an undelivered release — the sealed
//!   audit surface is never serialized;
//! * **write-ahead log** ([`WalWriter`] / [`read_wal_from`]): a framed
//!   record stream of every *input* the service accepted after the
//!   checkpoint — ingested batches, watermark heartbeats, control-plane
//!   commands, epoch transitions, the finish call. Every frame carries a
//!   sequence number and an FNV-1a checksum, so a duplicated frame or a
//!   bit flip is a typed error (with [`recover_wal_prefix`] to salvage
//!   the records before the damage) while a torn tail from a crash
//!   mid-append stays silently recoverable. Replaying the tail
//!   (`offset ≥` the checkpoint's) through the normal public entry
//!   points re-derives the exact pre-crash state, because the service is
//!   deterministic in its inputs under seeded RNGs.
//!
//! **Recovery = [`read_checkpoint`] + [`replay_into`] the WAL tail.** The
//! equivalence anchor (see `tests/crash_recovery.rs`): a service killed at
//! an arbitrary batch boundary and recovered produces bit-for-bit the same
//! sink deliveries, ledger spends and low watermark as one that never
//! crashed.
//!
//! The wire format is a deliberately boring little-endian binary codec
//! (length-prefixed, like [`pdp_stream`]'s framing): every `u64` travels
//! at full precision (RNG state words and query-ring words use the whole
//! range, which a float-backed JSON value model cannot carry), `f64`
//! travels as raw bits, and collections are written in deterministic
//! (sorted) order so equal states encode byte-identically.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use pdp_cep::DetectorSnapshot;
use pdp_cep::{Pattern, PatternId, PatternSet, QueryId, Semantics};
use pdp_dp::{BudgetLedgerSnapshot, EpochLedgerSnapshot, Epsilon};
use pdp_stream::{
    AttrValue, Event, EventType, IndicatorVector, ReorderSnapshot, TimeDelta, Timestamp,
    WindowedIndicators,
};

use crate::answer::QuerySpec;
use crate::control::{Command, ControlPlaneSnapshot};
use crate::distribution::BudgetDistribution;
use crate::error::CoreError;
use crate::protect::PipelineSnapshot;
use crate::service::{KeyedEvent, ShardedService, SubjectId};
use crate::sink::ReleaseSink;
use crate::streaming::{EngineSnapshot, OnlineCoreSnapshot, QueryRef};

/// File magic of a checkpoint artifact (the trailing byte is the format
/// version; v2 added the control plane's dense subject-intern indexes).
const CKPT_MAGIC: &[u8; 8] = b"PDPCKPT\x02";
/// The v1 magic: recognized only to produce a typed "unsupported
/// version" error instead of a generic bad-magic one. v1 images predate
/// dense subject interning and cannot be decoded by this build.
const CKPT_MAGIC_V1: &[u8; 8] = b"PDPCKPT\x01";
/// File magic of a write-ahead log (the trailing byte is the format
/// version; v2 added per-frame sequence numbers and checksums).
const WAL_MAGIC: &[u8; 8] = b"PDPWAL\x00\x02";
/// The v1 magic: recognized only to produce a typed "unsupported
/// version" error instead of a generic bad-magic one.
const WAL_MAGIC_V1: &[u8; 8] = b"PDPWAL\x00\x01";
/// Fixed per-frame overhead: `u32` length + `u64` sequence number before
/// the payload, `u64` FNV-1a checksum after it.
const WAL_FRAME_OVERHEAD: u64 = 4 + 8 + 8;
/// Sanity bound on a single decoded length field (1 GiB) — a corrupt
/// length must error, not attempt a huge allocation.
const MAX_LEN: u64 = 1 << 30;

fn durability_err(msg: impl Into<String>) -> CoreError {
    CoreError::Durability(msg.into())
}

fn io_err(context: &str, e: std::io::Error) -> CoreError {
    CoreError::Durability(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// The binary wire codec
// ---------------------------------------------------------------------------

/// Growable little-endian encode buffer.
#[derive(Debug, Default)]
struct ByteWriter {
    buf: Vec<u8>,
}

/// Bounds-checked decode cursor over an encoded payload.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| durability_err("truncated payload"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn finish(self) -> Result<(), CoreError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(durability_err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// One type's encoding on the durability wire. Implementations must be
/// deterministic: equal values encode to equal bytes.
trait Wire: Sized {
    fn encode(&self, w: &mut ByteWriter);
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError>;
}

impl Wire for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.buf.push(u8::from(*self));
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(durability_err(format!("invalid bool byte {b}"))),
        }
    }
}

impl Wire for u8 {
    fn encode(&self, w: &mut ByteWriter) {
        w.buf.push(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(r.take(1)?[0])
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(u32::from_le_bytes(r.take(4)?.try_into().unwrap()))
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(u64::from_le_bytes(r.take(8)?.try_into().unwrap()))
    }
}

impl Wire for i64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(i64::from_le_bytes(r.take(8)?.try_into().unwrap()))
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut ByteWriter) {
        (*self as u64).encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        let v = u64::decode(r)?;
        if v > MAX_LEN {
            return Err(durability_err(format!("implausible size {v}")));
        }
        Ok(v as usize)
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        self.to_bits().encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl Wire for String {
    fn encode(&self, w: &mut ByteWriter) {
        self.len().encode(w);
        w.buf.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        let len = usize::decode(r)?;
        String::from_utf8(r.take(len)?.to_vec()).map_err(|_| durability_err("invalid utf-8 string"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        self.len().encode(w);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        let len = usize::decode(r)?;
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => false.encode(w),
            Some(v) => {
                true.encode(w);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(if bool::decode(r)? {
            Some(T::decode(r)?)
        } else {
            None
        })
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
        self.3.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?, D::decode(r)?))
    }
}

impl Wire for [u64; 4] {
    fn encode(&self, w: &mut ByteWriter) {
        for word in self {
            word.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok([
            u64::decode(r)?,
            u64::decode(r)?,
            u64::decode(r)?,
            u64::decode(r)?,
        ])
    }
}

macro_rules! wire_newtype {
    ($ty:ty, $inner:ty, $ctor:expr, $get:expr) => {
        impl Wire for $ty {
            fn encode(&self, w: &mut ByteWriter) {
                $get(self).encode(w);
            }
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
                Ok($ctor(<$inner>::decode(r)?))
            }
        }
    };
}

wire_newtype!(EventType, u32, EventType, |v: &EventType| v.0);
wire_newtype!(PatternId, u32, PatternId, |v: &PatternId| v.0);
wire_newtype!(QueryId, u32, QueryId, |v: &QueryId| v.0);
wire_newtype!(SubjectId, u64, SubjectId, |v: &SubjectId| v.0);
wire_newtype!(Timestamp, i64, Timestamp::from_millis, |v: &Timestamp| v
    .millis());
wire_newtype!(TimeDelta, i64, TimeDelta::from_millis, |v: &TimeDelta| v
    .millis());

impl Wire for Epsilon {
    fn encode(&self, w: &mut ByteWriter) {
        self.value().encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Epsilon::new(f64::decode(r)?).map_err(|e| durability_err(format!("invalid epsilon: {e}")))
    }
}

impl Wire for AttrValue {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            AttrValue::Int(v) => {
                0u8.encode(w);
                v.encode(w);
            }
            AttrValue::Float(v) => {
                1u8.encode(w);
                v.encode(w);
            }
            AttrValue::Str(v) => {
                2u8.encode(w);
                v.encode(w);
            }
            AttrValue::Bool(v) => {
                3u8.encode(w);
                v.encode(w);
            }
            AttrValue::Location(x, y) => {
                4u8.encode(w);
                x.encode(w);
                y.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(match u8::decode(r)? {
            0 => AttrValue::Int(i64::decode(r)?),
            1 => AttrValue::Float(f64::decode(r)?),
            2 => AttrValue::Str(String::decode(r)?),
            3 => AttrValue::Bool(bool::decode(r)?),
            4 => AttrValue::Location(f64::decode(r)?, f64::decode(r)?),
            t => return Err(durability_err(format!("invalid attr tag {t}"))),
        })
    }
}

impl Wire for Event {
    fn encode(&self, w: &mut ByteWriter) {
        self.ty.encode(w);
        self.ts.encode(w);
        self.attr_count().encode(w);
        for (name, value) in self.attrs() {
            name.to_owned().encode(w);
            value.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        let ty = EventType::decode(r)?;
        let ts = Timestamp::decode(r)?;
        let mut event = Event::new(ty, ts);
        let n = usize::decode(r)?;
        for _ in 0..n {
            let name = String::decode(r)?;
            event.set_attr(&name, AttrValue::decode(r)?);
        }
        Ok(event)
    }
}

impl Wire for IndicatorVector {
    fn encode(&self, w: &mut ByteWriter) {
        self.n_types().encode(w);
        let present: Vec<EventType> = self.present_types().collect();
        present.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        let n_types = usize::decode(r)?;
        let present = Vec::<EventType>::decode(r)?;
        if present.iter().any(|t| t.index() >= n_types) {
            return Err(durability_err("indicator bit outside its universe"));
        }
        Ok(IndicatorVector::from_present(present, n_types))
    }
}

impl Wire for Pattern {
    fn encode(&self, w: &mut ByteWriter) {
        self.name().to_owned().encode(w);
        self.elements().to_vec().encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        let name = String::decode(r)?;
        let elements = Vec::<EventType>::decode(r)?;
        Pattern::seq(&name, elements).map_err(|e| durability_err(format!("invalid pattern: {e}")))
    }
}

impl Wire for PatternSet {
    fn encode(&self, w: &mut ByteWriter) {
        self.len().encode(w);
        for (_, pattern) in self.iter() {
            pattern.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        let len = usize::decode(r)?;
        let mut set = PatternSet::new();
        for _ in 0..len {
            set.insert(Pattern::decode(r)?);
        }
        Ok(set)
    }
}

impl Wire for Semantics {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Semantics::Ordered => 0u8.encode(w),
            Semantics::Conjunction => 1u8.encode(w),
            Semantics::OrderedWithin(d) => {
                2u8.encode(w);
                d.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(match u8::decode(r)? {
            0 => Semantics::Ordered,
            1 => Semantics::Conjunction,
            2 => Semantics::OrderedWithin(TimeDelta::decode(r)?),
            t => return Err(durability_err(format!("invalid semantics tag {t}"))),
        })
    }
}

impl Wire for QuerySpec {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            QuerySpec::Pattern { pattern } => {
                0u8.encode(w);
                pattern.encode(w);
            }
            QuerySpec::Count { pattern, horizon } => {
                1u8.encode(w);
                pattern.encode(w);
                horizon.encode(w);
            }
            QuerySpec::Categorical { options, fallback } => {
                2u8.encode(w);
                options.encode(w);
                fallback.encode(w);
            }
            QuerySpec::Argmax {
                candidates,
                horizon,
                eps,
            } => {
                3u8.encode(w);
                candidates.encode(w);
                horizon.encode(w);
                eps.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(match u8::decode(r)? {
            0 => QuerySpec::Pattern {
                pattern: PatternId::decode(r)?,
            },
            1 => QuerySpec::Count {
                pattern: PatternId::decode(r)?,
                horizon: usize::decode(r)?,
            },
            2 => QuerySpec::Categorical {
                options: Vec::decode(r)?,
                fallback: String::decode(r)?,
            },
            3 => QuerySpec::Argmax {
                candidates: Vec::decode(r)?,
                horizon: usize::decode(r)?,
                eps: Epsilon::decode(r)?,
            },
            t => return Err(durability_err(format!("invalid query spec tag {t}"))),
        })
    }
}

impl Wire for QueryRef {
    fn encode(&self, w: &mut ByteWriter) {
        self.id.encode(w);
        self.name.encode(w);
        self.spec.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(QueryRef {
            id: QueryId::decode(r)?,
            name: String::decode(r)?,
            spec: QuerySpec::decode(r)?,
        })
    }
}

impl Wire for BudgetDistribution {
    fn encode(&self, w: &mut ByteWriter) {
        self.total().encode(w);
        self.shares().to_vec().encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        let total = Epsilon::decode(r)?;
        let shares = Vec::<Epsilon>::decode(r)?;
        BudgetDistribution::from_shares(total, shares)
            .map_err(|e| durability_err(format!("invalid distribution: {e}")))
    }
}

impl Wire for PipelineSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        self.label.encode(w);
        self.probs.encode(w);
        self.assignments.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(PipelineSnapshot {
            label: String::decode(r)?,
            probs: Vec::decode(r)?,
            assignments: Vec::decode(r)?,
        })
    }
}

impl Wire for OnlineCoreSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        self.pipeline.encode(w);
        self.patterns.encode(w);
        self.queries.encode(w);
        self.epoch.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(OnlineCoreSnapshot {
            pipeline: PipelineSnapshot::decode(r)?,
            patterns: PatternSet::decode(r)?,
            queries: Vec::decode(r)?,
            epoch: u64::decode(r)?,
        })
    }
}

impl<K: Wire> Wire for BudgetLedgerSnapshot<K> {
    fn encode(&self, w: &mut ByteWriter) {
        self.limit.encode(w);
        self.spent.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(BudgetLedgerSnapshot {
            limit: Option::decode(r)?,
            spent: Vec::decode(r)?,
        })
    }
}

impl<K: Wire> Wire for EpochLedgerSnapshot<K> {
    fn encode(&self, w: &mut ByteWriter) {
        self.caps.encode(w);
        self.retired_from.encode(w);
        self.per_epoch.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(EpochLedgerSnapshot {
            caps: Vec::decode(r)?,
            retired_from: Vec::decode(r)?,
            per_epoch: Vec::decode(r)?,
        })
    }
}

impl Wire for DetectorSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        self.patterns.encode(w);
        self.semantics.encode(w);
        self.window_len.encode(w);
        self.n_types.encode(w);
        self.open_window.encode(w);
        self.emitted.encode(w);
        self.nfa_states.encode(w);
        self.present.encode(w);
        self.timed.encode(w);
        self.last_ts.encode(w);
        self.pending.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(DetectorSnapshot {
            patterns: PatternSet::decode(r)?,
            semantics: Semantics::decode(r)?,
            window_len: TimeDelta::decode(r)?,
            n_types: usize::decode(r)?,
            open_window: Option::decode(r)?,
            emitted: usize::decode(r)?,
            nfa_states: Vec::decode(r)?,
            present: IndicatorVector::decode(r)?,
            timed: Vec::decode(r)?,
            last_ts: Option::decode(r)?,
            pending: Vec::decode(r)?,
        })
    }
}

impl Wire for ReorderSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        self.max_delay.encode(w);
        self.pending.encode(w);
        self.max_seen.encode(w);
        self.seq.encode(w);
        self.dropped.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(ReorderSnapshot {
            max_delay: TimeDelta::decode(r)?,
            pending: Vec::decode(r)?,
            max_seen: Option::decode(r)?,
            seq: u64::decode(r)?,
            dropped: u64::decode(r)?,
        })
    }
}

impl Wire for EngineSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        self.core.encode(w);
        self.ledger.encode(w);
        self.query_ledger.encode(w);
        self.query_state.encode(w);
        self.detector.encode(w);
        self.events_seen.encode(w);
        self.pending_epochs.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(EngineSnapshot {
            core: OnlineCoreSnapshot::decode(r)?,
            ledger: BudgetLedgerSnapshot::decode(r)?,
            query_ledger: BudgetLedgerSnapshot::decode(r)?,
            query_state: Vec::decode(r)?,
            detector: DetectorSnapshot::decode(r)?,
            events_seen: usize::decode(r)?,
            pending_epochs: Vec::decode(r)?,
        })
    }
}

impl Wire for ControlPlaneSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        self.patterns.encode(w);
        self.private_order.encode(w);
        self.revoked.encode(w);
        self.subjects.encode(w);
        self.queries.encode(w);
        self.explicit_history.encode(w);
        self.released_history.encode(w);
        self.widening.encode(w);
        self.epoch.encode(w);
        self.compiled_initial.encode(w);
        self.dirty.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(ControlPlaneSnapshot {
            patterns: PatternSet::decode(r)?,
            private_order: Vec::decode(r)?,
            revoked: Vec::decode(r)?,
            subjects: {
                // The dense intern indexes must be a permutation of
                // 0..len: ControlPlane::restore indexes its reverse table
                // with them, so a corrupt image must fail typed here, not
                // panic there.
                let subjects: Vec<(SubjectId, u32, Vec<PatternId>, bool)> = Vec::decode(r)?;
                let mut seen = vec![false; subjects.len()];
                for &(_, dense, _, _) in &subjects {
                    match seen.get_mut(dense as usize) {
                        Some(slot) if !*slot => *slot = true,
                        _ => {
                            return Err(durability_err(format!(
                                "invalid dense subject index {dense} (must be a \
                                 permutation of 0..{})",
                                subjects.len()
                            )))
                        }
                    }
                }
                subjects
            },
            queries: Vec::decode(r)?,
            explicit_history: Option::decode(r)?,
            released_history: Vec::decode(r)?,
            widening: Option::decode(r)?,
            epoch: u64::decode(r)?,
            compiled_initial: bool::decode(r)?,
            dirty: bool::decode(r)?,
        })
    }
}

impl Wire for KeyedEvent {
    fn encode(&self, w: &mut ByteWriter) {
        self.subject.encode(w);
        self.event.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(KeyedEvent {
            subject: SubjectId::decode(r)?,
            event: Event::decode(r)?,
        })
    }
}

impl Wire for Command {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Command::RegisterSubject(s) => {
                0u8.encode(w);
                s.encode(w);
            }
            Command::RetireSubject(s) => {
                1u8.encode(w);
                s.encode(w);
            }
            Command::RegisterPrivatePattern { subject, pattern } => {
                2u8.encode(w);
                subject.encode(w);
                pattern.encode(w);
            }
            Command::RevokePrivatePattern { subject, pattern } => {
                3u8.encode(w);
                subject.encode(w);
                pattern.encode(w);
            }
            Command::AddConsumerQuery { name, pattern } => {
                4u8.encode(w);
                name.encode(w);
                pattern.encode(w);
            }
            Command::AddTypedQuery { name, spec } => {
                5u8.encode(w);
                name.encode(w);
                spec.encode(w);
            }
            Command::RemoveConsumerQuery(q) => {
                6u8.encode(w);
                q.encode(w);
            }
            Command::ProvideHistory(windows) => {
                7u8.encode(w);
                let rows: Vec<IndicatorVector> = windows.iter().cloned().collect();
                rows.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(match u8::decode(r)? {
            0 => Command::RegisterSubject(SubjectId::decode(r)?),
            1 => Command::RetireSubject(SubjectId::decode(r)?),
            2 => Command::RegisterPrivatePattern {
                subject: SubjectId::decode(r)?,
                pattern: Pattern::decode(r)?,
            },
            3 => Command::RevokePrivatePattern {
                subject: SubjectId::decode(r)?,
                pattern: PatternId::decode(r)?,
            },
            4 => Command::AddConsumerQuery {
                name: String::decode(r)?,
                pattern: Pattern::decode(r)?,
            },
            5 => Command::AddTypedQuery {
                name: String::decode(r)?,
                spec: QuerySpec::decode(r)?,
            },
            6 => Command::RemoveConsumerQuery(QueryId::decode(r)?),
            7 => Command::ProvideHistory(WindowedIndicators::new(Vec::decode(r)?)),
            t => return Err(durability_err(format!("invalid command tag {t}"))),
        })
    }
}

// ---------------------------------------------------------------------------
// The checkpoint image
// ---------------------------------------------------------------------------

/// One shard's durable state: everything that lives behind the shard
/// mutex, including the RNG position (restoring it resumes the xoshiro
/// stream mid-sequence — replay determinism depends on it).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// The reorder buffer (pending events, clock, drop count).
    pub buffer: ReorderSnapshot,
    /// The shard engine (open window, detector, ledgers, staged epochs).
    pub engine: EngineSnapshot,
    /// The shard RNG's xoshiro256++ state words.
    pub rng: [u64; 4],
    /// The shard's stream-time frontier.
    pub frontier: Timestamp,
}

/// The service-side mirror of one shard's observable state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMetaSnapshot {
    /// Mirror of the shard buffer's `max_seen` clock.
    pub max_seen: Option<Timestamp>,
    /// Mirror of the shard's frontier.
    pub frontier: Timestamp,
    /// Mirror of the dropped-event count.
    pub dropped: u64,
    /// Mirror of the pending-event count.
    pub buffered: usize,
    /// Mirror of the released-window count.
    pub released: usize,
}

/// One partially merged window accumulator.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeRowSnapshot {
    /// Window start.
    pub start: Timestamp,
    /// Releasing epoch.
    pub epoch: u64,
    /// Shards that have released this window so far.
    pub shards_done: usize,
    /// Per-query disjunction so far.
    pub answers_any: Vec<bool>,
    /// Per-query positive-shard counts so far.
    pub positive_shards: Vec<usize>,
    /// Per-type union so far (`None` for placeholder rows).
    pub union: Option<IndicatorVector>,
}

/// The merge accumulator (per-window rows awaiting the last shard).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeSnapshot {
    /// Index of the lowest unmerged window.
    pub next_index: usize,
    /// Accumulator rows, front = `next_index`.
    pub rows: Vec<MergeRowSnapshot>,
}

/// A full, self-contained image of a [`ShardedService`] captured at a
/// draining sync point (no in-flight rounds, empty outbox). Pair with the
/// same [`ServiceConfig`](crate::service::ServiceConfig) the service was
/// built with to [`ShardedService::restore`] it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCheckpoint {
    /// The recorded execution mode (worker pool vs inline).
    pub parallel: bool,
    /// Per-shard resident state.
    pub shards: Vec<ShardCheckpoint>,
    /// Per-shard service-side mirrors.
    pub meta: Vec<ShardMetaSnapshot>,
    /// Per shard, per epoch: the release charge schedule.
    pub shard_charges: Vec<Vec<Vec<(SubjectId, PatternId, Epsilon)>>>,
    /// Per-subject epoch ledgers, sorted by subject id.
    pub ledgers: Vec<(SubjectId, EpochLedgerSnapshot<PatternId>)>,
    /// The service's query-budget ledger.
    pub query_ledger: EpochLedgerSnapshot<QueryId>,
    /// The merge accumulator.
    pub merge: MergeSnapshot,
    /// Every compiled epoch core, indexed by epoch.
    pub cores_by_epoch: Vec<OnlineCoreSnapshot>,
    /// Per-epoch query charge schedules.
    pub query_charges_by_epoch: Vec<Vec<(QueryId, Epsilon)>>,
    /// Trailing-window state of the merged stateful queries.
    pub merged_state: Vec<(QueryId, Vec<u64>)>,
    /// The control plane's dynamic state.
    pub control: ControlPlaneSnapshot,
    /// `(activation_index, epoch)` of every scheduled transition.
    pub activations: Vec<(usize, u64)>,
    /// Total events accepted so far.
    pub events_ingested: u64,
    /// Whether the stream was finished.
    pub finished: bool,
    /// WAL byte offset this checkpoint is consistent with: recovery
    /// replays records from here on. Zero when no WAL was attached.
    pub wal_offset: u64,
}

impl Wire for ShardCheckpoint {
    fn encode(&self, w: &mut ByteWriter) {
        self.buffer.encode(w);
        self.engine.encode(w);
        self.rng.encode(w);
        self.frontier.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(ShardCheckpoint {
            buffer: ReorderSnapshot::decode(r)?,
            engine: EngineSnapshot::decode(r)?,
            rng: <[u64; 4]>::decode(r)?,
            frontier: Timestamp::decode(r)?,
        })
    }
}

impl Wire for ShardMetaSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        self.max_seen.encode(w);
        self.frontier.encode(w);
        self.dropped.encode(w);
        self.buffered.encode(w);
        self.released.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(ShardMetaSnapshot {
            max_seen: Option::decode(r)?,
            frontier: Timestamp::decode(r)?,
            dropped: u64::decode(r)?,
            buffered: usize::decode(r)?,
            released: usize::decode(r)?,
        })
    }
}

impl Wire for MergeRowSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        self.start.encode(w);
        self.epoch.encode(w);
        self.shards_done.encode(w);
        self.answers_any.encode(w);
        self.positive_shards.encode(w);
        self.union.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(MergeRowSnapshot {
            start: Timestamp::decode(r)?,
            epoch: u64::decode(r)?,
            shards_done: usize::decode(r)?,
            answers_any: Vec::decode(r)?,
            positive_shards: Vec::decode(r)?,
            union: Option::decode(r)?,
        })
    }
}

impl Wire for MergeSnapshot {
    fn encode(&self, w: &mut ByteWriter) {
        self.next_index.encode(w);
        self.rows.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(MergeSnapshot {
            next_index: usize::decode(r)?,
            rows: Vec::decode(r)?,
        })
    }
}

impl Wire for ServiceCheckpoint {
    fn encode(&self, w: &mut ByteWriter) {
        self.parallel.encode(w);
        self.shards.encode(w);
        self.meta.encode(w);
        self.shard_charges.encode(w);
        self.ledgers.encode(w);
        self.query_ledger.encode(w);
        self.merge.encode(w);
        self.cores_by_epoch.encode(w);
        self.query_charges_by_epoch.encode(w);
        self.merged_state.encode(w);
        self.control.encode(w);
        self.activations.encode(w);
        self.events_ingested.encode(w);
        self.finished.encode(w);
        self.wal_offset.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(ServiceCheckpoint {
            parallel: bool::decode(r)?,
            shards: Vec::decode(r)?,
            meta: Vec::decode(r)?,
            shard_charges: Vec::decode(r)?,
            ledgers: Vec::decode(r)?,
            query_ledger: EpochLedgerSnapshot::decode(r)?,
            merge: MergeSnapshot::decode(r)?,
            cores_by_epoch: Vec::decode(r)?,
            query_charges_by_epoch: Vec::decode(r)?,
            merged_state: Vec::decode(r)?,
            control: ControlPlaneSnapshot::decode(r)?,
            activations: Vec::decode(r)?,
            events_ingested: u64::decode(r)?,
            finished: bool::decode(r)?,
            wal_offset: u64::decode(r)?,
        })
    }
}

impl ServiceCheckpoint {
    /// Encode to the deterministic binary wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::default();
        self.encode(&mut w);
        w.buf
    }

    /// Decode from [`ServiceCheckpoint::to_bytes`] output; rejects
    /// truncated or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CoreError> {
        let mut r = ByteReader::new(bytes);
        let ckpt = Self::decode(&mut r)?;
        r.finish()?;
        Ok(ckpt)
    }
}

/// FNV-1a over the payload — a torn-write detector, not a security
/// feature.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Write a checkpoint file atomically: encode, write `magic + length +
/// payload + fnv64` to a sibling temp file, fsync, rename over `path`.
/// A crash mid-write leaves the previous checkpoint intact.
pub fn write_checkpoint(path: &Path, checkpoint: &ServiceCheckpoint) -> Result<(), CoreError> {
    let payload = checkpoint.to_bytes();
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(CKPT_MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    let tmp = path.with_extension("ckpt-tmp");
    let mut file = File::create(&tmp).map_err(|e| io_err("create checkpoint temp", e))?;
    file.write_all(&out)
        .map_err(|e| io_err("write checkpoint", e))?;
    file.sync_all().map_err(|e| io_err("sync checkpoint", e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| io_err("publish checkpoint", e))
}

/// Read and validate a checkpoint file written by [`write_checkpoint`].
pub fn read_checkpoint(path: &Path) -> Result<ServiceCheckpoint, CoreError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read checkpoint", e))?;
    if bytes.len() >= 8 && &bytes[..8] == CKPT_MAGIC_V1 {
        return Err(durability_err(
            "unsupported checkpoint format version 1 (predates dense subject \
             interning); re-checkpoint from a live service",
        ));
    }
    if bytes.len() < 24 || &bytes[..8] != CKPT_MAGIC {
        return Err(durability_err("not a checkpoint file (bad magic)"));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if len > MAX_LEN || bytes.len() as u64 != 24 + len {
        return Err(durability_err("checkpoint file length mismatch"));
    }
    let payload = &bytes[16..16 + len as usize];
    let stored = u64::from_le_bytes(bytes[16 + len as usize..].try_into().unwrap());
    if fnv1a(payload) != stored {
        return Err(durability_err("checkpoint checksum mismatch (torn write)"));
    }
    ServiceCheckpoint::from_bytes(payload)
}

// ---------------------------------------------------------------------------
// The write-ahead log
// ---------------------------------------------------------------------------

/// One durable input record: everything that can change service state,
/// in the order the service accepted it.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A batch accepted by `push_batch` (already validated: every subject
    /// was routable when it was logged).
    Batch(Vec<KeyedEvent>),
    /// A watermark heartbeat.
    Watermark(Timestamp),
    /// A staged control-plane command.
    Command(Command),
    /// A successful epoch transition.
    BeginEpoch,
    /// The terminal finish call.
    Finish,
}

impl Wire for WalRecord {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            WalRecord::Batch(events) => {
                0u8.encode(w);
                events.encode(w);
            }
            WalRecord::Watermark(ts) => {
                1u8.encode(w);
                ts.encode(w);
            }
            WalRecord::Command(cmd) => {
                2u8.encode(w);
                cmd.encode(w);
            }
            WalRecord::BeginEpoch => 3u8.encode(w),
            WalRecord::Finish => 4u8.encode(w),
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CoreError> {
        Ok(match u8::decode(r)? {
            0 => WalRecord::Batch(Vec::decode(r)?),
            1 => WalRecord::Watermark(Timestamp::decode(r)?),
            2 => WalRecord::Command(Command::decode(r)?),
            3 => WalRecord::BeginEpoch,
            4 => WalRecord::Finish,
            t => return Err(durability_err(format!("invalid wal record tag {t}"))),
        })
    }
}

/// Append handle over a write-ahead log file. Records are framed as
/// `u32 length + u64 sequence + payload + u64 fnv1a(sequence ∥ payload)`;
/// the sequence number makes a duplicated frame detectable and the
/// checksum makes a bit flip detectable, while a torn *tail* (a crash
/// mid-append) stays silently recoverable. [`WalWriter::offset`] after
/// an append is the durable position a checkpoint taken *now* is
/// consistent with.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    offset: u64,
    seq: u64,
    /// Persistent frame encode buffer: every append encodes the payload
    /// *directly* into this buffer after a 12-byte length/sequence
    /// placeholder, patches the header in place, and appends the
    /// checksum — one buffered write, zero steady-state allocations
    /// (capacity is retained across appends).
    scratch: Vec<u8>,
}

impl WalWriter {
    /// Create (truncate) a fresh WAL at `path`.
    pub fn create(path: &Path) -> Result<Self, CoreError> {
        let mut file = File::create(path).map_err(|e| io_err("create wal", e))?;
        file.write_all(WAL_MAGIC)
            .map_err(|e| io_err("write wal header", e))?;
        file.sync_all().map_err(|e| io_err("sync wal header", e))?;
        Ok(WalWriter {
            file,
            offset: WAL_MAGIC.len() as u64,
            seq: 0,
            scratch: Vec::new(),
        })
    }

    /// Reopen an existing WAL for appending. Scans the record stream and
    /// positions after the last *complete* record, so a torn tail from a
    /// crash mid-append is overwritten by the next append. Mid-log
    /// corruption (a bad checksum or sequence before the tail) is refused
    /// with a typed error — appending after it would launder the damage.
    pub fn open_append(path: &Path) -> Result<Self, CoreError> {
        let bytes = std::fs::read(path).map_err(|e| io_err("read wal", e))?;
        let scan = scan_wal(&bytes)?;
        if let Some(anomaly) = scan.anomaly {
            return Err(durability_err(format!("refusing to append: {anomaly}")));
        }
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open wal", e))?;
        file.seek(SeekFrom::Start(scan.end))
            .map_err(|e| io_err("seek wal", e))?;
        Ok(WalWriter {
            file,
            offset: scan.end,
            seq: scan.frames.len() as u64,
            scratch: Vec::new(),
        })
    }

    /// Bytes of complete records written so far (including the header).
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Append one record and flush it to the OS.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), CoreError> {
        self.append_frame(|w| record.encode(w))
    }

    /// Append a batch record without taking ownership of the batch — the
    /// service logs at partition time, while it still only borrows the
    /// events. Encodes identically to [`WalRecord::Batch`].
    pub fn append_batch(&mut self, batch: &[KeyedEvent]) -> Result<(), CoreError> {
        self.append_frame(|w| {
            0u8.encode(w);
            batch.len().encode(w);
            for keyed in batch {
                keyed.encode(w);
            }
        })
    }

    /// Append a command record from a borrow (encodes identically to
    /// [`WalRecord::Command`]).
    pub fn append_command(&mut self, command: &Command) -> Result<(), CoreError> {
        self.append_frame(|w| {
            2u8.encode(w);
            command.encode(w);
        })
    }

    /// Frame one record: the payload encoder runs directly against the
    /// persistent scratch buffer (after a 12-byte header placeholder),
    /// then the length and sequence are patched in place and the checksum
    /// appended — no writer→frame copy, no per-append allocation once the
    /// buffer has grown to the workload's frame size.
    fn append_frame(
        &mut self,
        encode_payload: impl FnOnce(&mut ByteWriter),
    ) -> Result<(), CoreError> {
        let mut w = ByteWriter {
            buf: std::mem::take(&mut self.scratch),
        };
        w.buf.clear();
        w.buf.extend_from_slice(&[0u8; 12]); // length + sequence, patched below
        encode_payload(&mut w);
        let mut frame = w.buf;
        let payload_len = (frame.len() - 12) as u32;
        frame[0..4].copy_from_slice(&payload_len.to_le_bytes());
        frame[4..12].copy_from_slice(&self.seq.to_le_bytes());
        let checksum = fnv1a(&frame[4..]);
        frame.extend_from_slice(&checksum.to_le_bytes());
        let result = self.file.write_all(&frame).and_then(|()| self.file.flush());
        let frame_len = frame.len() as u64;
        self.scratch = frame; // keep the capacity for the next append
        if let Err(e) = result {
            // a partial write may have landed; reposition so a retry of
            // the same frame overwrites it byte-for-byte instead of
            // appending after garbage
            self.file.seek(SeekFrom::Start(self.offset)).ok();
            return Err(io_err("append wal record", e));
        }
        self.offset += frame_len;
        self.seq += 1;
        Ok(())
    }

    /// fsync the log — the true durability barrier. [`WalWriter::append`]
    /// only flushes to the OS; call this at the cadence the deployment's
    /// loss tolerance requires.
    pub fn sync(&mut self) -> Result<(), CoreError> {
        self.file.sync_data().map_err(|e| io_err("fsync wal", e))
    }
}

/// Result of walking a WAL byte image: the valid frame prefix, where it
/// ends, and the first anomaly that stopped the walk (if any).
struct WalScan {
    /// `(frame_start, payload_start, payload_end)` of each valid frame.
    frames: Vec<(u64, u64, u64)>,
    /// Position after the last valid frame — where an append may resume.
    end: u64,
    /// First *corruption* found (bad checksum, duplicated/out-of-order
    /// sequence, implausible length). `None` for a clean log; a torn
    /// tail is a crash artifact, not corruption, and stays `None`.
    anomaly: Option<String>,
}

/// Walk the framed records of a WAL byte image. Trailing partial frames
/// (a crash mid-append) silently end the walk; complete-but-invalid
/// frames are reported as an anomaly so callers choose between strict
/// failure ([`read_wal_from`]) and prefix recovery
/// ([`recover_wal_prefix`]).
fn scan_wal(bytes: &[u8]) -> Result<WalScan, CoreError> {
    if bytes.len() >= WAL_MAGIC_V1.len() && &bytes[..WAL_MAGIC_V1.len()] == WAL_MAGIC_V1 {
        return Err(durability_err(
            "unsupported wal format version 1 (no frame checksums); re-create the log",
        ));
    }
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(durability_err("not a wal file (bad magic)"));
    }
    let mut frames = Vec::new();
    let mut pos = WAL_MAGIC.len() as u64;
    let mut anomaly = None;
    loop {
        let p = pos as usize;
        if p + 12 > bytes.len() {
            break; // torn tail (or clean end)
        }
        let len = u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap()) as u64;
        if len > MAX_LEN {
            anomaly = Some(format!(
                "implausible wal record length {len} at offset {pos}"
            ));
            break;
        }
        let end = pos + WAL_FRAME_OVERHEAD + len;
        if end as usize > bytes.len() {
            break; // torn tail
        }
        let seq = u64::from_le_bytes(bytes[p + 4..p + 12].try_into().unwrap());
        let expected = frames.len() as u64;
        if seq != expected {
            anomaly = Some(format!(
                "wal frame at offset {pos} carries sequence {seq}, expected {expected} \
                 (duplicated or out-of-order frame)"
            ));
            break;
        }
        let body = &bytes[p + 4..(end - 8) as usize];
        let stored =
            u64::from_le_bytes(bytes[(end - 8) as usize..end as usize].try_into().unwrap());
        if fnv1a(body) != stored {
            anomaly = Some(format!(
                "wal frame {seq} at offset {pos} fails its checksum (corrupt frame)"
            ));
            break;
        }
        frames.push((pos, pos + 12, end - 8));
        pos = end;
    }
    Ok(WalScan {
        frames,
        end: pos,
        anomaly,
    })
}

fn decode_frames(
    bytes: &[u8],
    frames: &[(u64, u64, u64)],
    from: u64,
) -> Result<Vec<WalRecord>, CoreError> {
    let mut records = Vec::new();
    for &(frame_start, start, end) in frames {
        if frame_start < from.max(WAL_MAGIC.len() as u64) {
            continue;
        }
        let mut r = ByteReader::new(&bytes[start as usize..end as usize]);
        let record = WalRecord::decode(&mut r)?;
        r.finish()?;
        records.push(record);
    }
    Ok(records)
}

/// Read every complete record at byte offset ≥ `from` (a checkpoint's
/// [`ServiceCheckpoint::wal_offset`]; `0` means the whole log). Torn
/// trailing bytes are discarded — they belong to an append the crash
/// interrupted, whose operation is not part of the recovered history.
/// Mid-log corruption (checksum or sequence violations) is a typed
/// error; use [`recover_wal_prefix`] to salvage the valid prefix.
pub fn read_wal_from(path: &Path, from: u64) -> Result<Vec<WalRecord>, CoreError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read wal", e))?;
    let scan = scan_wal(&bytes)?;
    if let Some(anomaly) = scan.anomaly {
        return Err(durability_err(anomaly));
    }
    decode_frames(&bytes, &scan.frames, from)
}

/// Salvage the valid record prefix of a possibly corrupt WAL: returns
/// every record before the first invalid frame, plus a description of
/// that frame's defect (`None` when the log is clean apart from, at
/// most, a torn tail). A log whose header is unreadable has no valid
/// prefix and errors like [`read_wal_from`].
pub fn recover_wal_prefix(path: &Path) -> Result<(Vec<WalRecord>, Option<String>), CoreError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read wal", e))?;
    let scan = scan_wal(&bytes)?;
    let records = decode_frames(&bytes, &scan.frames, 0)?;
    Ok((records, scan.anomaly))
}

/// Replay a WAL tail through the service's normal public entry points,
/// delivering the releases it re-derives into `sink`. Must run **before**
/// a [`WalWriter`] is attached, or the replayed operations would be
/// logged twice.
///
/// Command records are write-ahead (logged before staging), so a command
/// the control plane rejected is in the log too; its replay re-fails
/// deterministically and is skipped. Every other record was logged after
/// its operation succeeded, so replay errors are real corruption and
/// propagate.
pub fn replay_into<S: ReleaseSink>(
    service: &mut ShardedService,
    records: Vec<WalRecord>,
    sink: &mut S,
) -> Result<(), CoreError> {
    for record in records {
        match record {
            WalRecord::Batch(events) => service.push_batch_into(events, sink)?,
            WalRecord::Watermark(ts) => service.advance_watermark_into(ts, sink)?,
            WalRecord::Command(cmd) => match service.submit(cmd) {
                Ok(_)
                | Err(CoreError::InvalidCommand(_))
                | Err(CoreError::UnknownSubject(_))
                | Err(CoreError::UnknownQuery(_)) => {}
                Err(e) => return Err(e),
            },
            WalRecord::BeginEpoch => {
                service.begin_epoch()?;
            }
            WalRecord::Finish => service.finish_into(sink)?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    #[test]
    fn primitives_round_trip_at_full_precision() {
        let mut w = ByteWriter::default();
        u64::MAX.encode(&mut w);
        (u64::MAX - 1).encode(&mut w);
        f64::MIN_POSITIVE.encode(&mut w);
        (-0.0f64).encode(&mut w);
        i64::MIN.encode(&mut w);
        "héllo".to_owned().encode(&mut w);
        let mut r = ByteReader::new(&w.buf);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX - 1);
        assert_eq!(f64::decode(&mut r).unwrap(), f64::MIN_POSITIVE);
        assert_eq!(f64::decode(&mut r).unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(i64::decode(&mut r).unwrap(), i64::MIN);
        assert_eq!(String::decode(&mut r).unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_and_trailing_payloads_error() {
        let mut w = ByteWriter::default();
        7u64.encode(&mut w);
        let mut r = ByteReader::new(&w.buf[..4]);
        assert!(u64::decode(&mut r).is_err());
        let mut r = ByteReader::new(&w.buf);
        u32::decode(&mut r).unwrap();
        assert!(r.finish().is_err(), "trailing bytes must be rejected");
    }

    #[test]
    fn events_and_commands_round_trip() {
        let event = Event::new(t(2), Timestamp::from_millis(41))
            .with_attr("cell", AttrValue::Location(3.5, -1.25))
            .with_attr("id", AttrValue::Int(i64::MAX));
        let records = vec![
            WalRecord::Batch(vec![KeyedEvent::new(SubjectId(u64::MAX), event)]),
            WalRecord::Watermark(Timestamp::from_millis(99)),
            WalRecord::Command(Command::RegisterPrivatePattern {
                subject: SubjectId(7),
                pattern: Pattern::seq("p", vec![t(0), t(1)]).unwrap(),
            }),
            WalRecord::Command(Command::AddTypedQuery {
                name: "cnt".into(),
                spec: QuerySpec::Count {
                    pattern: PatternId(0),
                    horizon: 3,
                },
            }),
            WalRecord::BeginEpoch,
            WalRecord::Finish,
        ];
        for record in &records {
            let mut w = ByteWriter::default();
            record.encode(&mut w);
            let mut r = ByteReader::new(&w.buf);
            assert_eq!(&WalRecord::decode(&mut r).unwrap(), record);
            r.finish().unwrap();
        }
    }

    #[test]
    fn wal_files_tolerate_torn_tails() {
        let dir = std::env::temp_dir().join(format!("pdp-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(&WalRecord::Watermark(Timestamp::from_millis(10)))
            .unwrap();
        let complete = wal.offset();
        wal.append(&WalRecord::Watermark(Timestamp::from_millis(20)))
            .unwrap();
        wal.sync().unwrap();
        drop(wal);
        // simulate a crash mid-append: truncate into the second record
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..complete as usize + 3]).unwrap();
        let records = read_wal_from(&path, 0).unwrap();
        assert_eq!(
            records,
            vec![WalRecord::Watermark(Timestamp::from_millis(10))]
        );
        // reopening for append lands after the last complete record …
        let mut wal = WalWriter::open_append(&path).unwrap();
        assert_eq!(wal.offset(), complete);
        wal.append(&WalRecord::Finish).unwrap();
        drop(wal);
        // … and the new record replaces the torn tail
        assert_eq!(
            read_wal_from(&path, 0).unwrap(),
            vec![
                WalRecord::Watermark(Timestamp::from_millis(10)),
                WalRecord::Finish
            ]
        );
        // offset filtering skips already-checkpointed records
        assert_eq!(
            read_wal_from(&path, complete).unwrap(),
            vec![WalRecord::Finish]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_frames_detect_duplication_and_bit_flips() {
        let dir = std::env::temp_dir().join(format!("pdp-wal-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // duplicated frame: re-append the bytes of the last frame
        let path = dir.join("dup.wal");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(&WalRecord::Watermark(Timestamp::from_millis(10)))
            .unwrap();
        let first_end = wal.offset() as usize;
        wal.append(&WalRecord::BeginEpoch).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let dup = bytes[first_end..].to_vec();
        bytes.extend_from_slice(&dup);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_wal_from(&path, 0).unwrap_err();
        assert!(
            matches!(&err, CoreError::Durability(msg) if msg.contains("sequence")),
            "got {err:?}"
        );
        // appending over corruption is refused too
        assert!(WalWriter::open_append(&path).is_err());
        // … but the valid prefix is recoverable
        let (records, anomaly) = recover_wal_prefix(&path).unwrap();
        assert_eq!(
            records,
            vec![
                WalRecord::Watermark(Timestamp::from_millis(10)),
                WalRecord::BeginEpoch
            ]
        );
        assert!(anomaly.unwrap().contains("sequence"));

        // bit flip inside the first frame's payload
        let path = dir.join("flip.wal");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(&WalRecord::Watermark(Timestamp::from_millis(10)))
            .unwrap();
        wal.append(&WalRecord::Finish).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let payload_pos = WAL_MAGIC.len() + 12 + 2;
        bytes[payload_pos] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_wal_from(&path, 0).unwrap_err();
        assert!(
            matches!(&err, CoreError::Durability(msg) if msg.contains("checksum")),
            "got {err:?}"
        );
        let (records, anomaly) = recover_wal_prefix(&path).unwrap();
        assert!(records.is_empty(), "nothing before the corrupt frame");
        assert!(anomaly.unwrap().contains("checksum"));

        // wrong magic and the retired v1 magic are typed errors
        let path = dir.join("magic.wal");
        std::fs::write(&path, b"NOTAWAL!rest").unwrap();
        assert!(matches!(
            read_wal_from(&path, 0),
            Err(CoreError::Durability(_))
        ));
        std::fs::write(&path, b"PDPWAL\x00\x01tail").unwrap();
        let err = read_wal_from(&path, 0).unwrap_err();
        assert!(
            matches!(&err, CoreError::Durability(msg) if msg.contains("version")),
            "got {err:?}"
        );
        assert!(recover_wal_prefix(&path).is_err(), "no valid prefix at all");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_files_reject_corruption() {
        let dir = std::env::temp_dir().join(format!("pdp-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("svc.ckpt");
        std::fs::write(&path, b"garbage").unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(CoreError::Durability(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
