//! Error type for pattern-level DP.

use std::fmt;

use pdp_dp::DpError;

/// Errors raised by distribution construction, protection and the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A budget distribution violated `Σεᵢ = ε` or `εᵢ ∈ [0, ε]`.
    InvalidDistribution(String),
    /// An underlying DP primitive rejected its parameters.
    Dp(DpError),
    /// A referenced pattern id is unknown.
    UnknownPattern(u32),
    /// The adaptive optimizer was invoked without historical data.
    MissingHistory,
    /// The engine was asked to serve before `setup()` completed.
    NotSetUp,
    /// A flip table width did not match the indicator width.
    WidthMismatch {
        /// Expected number of event types.
        expected: usize,
        /// What was provided.
        got: usize,
    },
    /// The streaming detector rejected its configuration or input (e.g. a
    /// non-positive window length, out-of-order events, a regressing
    /// watermark).
    Detection(String),
    /// An event was keyed by a data subject the service has never seen in
    /// its setup phase (multi-tenant ingestion requires registration).
    UnknownSubject(u64),
    /// The sharded service rejected its configuration or call sequence
    /// (zero shards, ingestion after `finish`, …).
    InvalidService(String),
    /// A referenced consumer query id is unknown.
    UnknownQuery(u32),
    /// A consumer query definition was rejected (zero horizon, empty or
    /// oversized candidate set, …).
    InvalidQuery(String),
    /// The control plane rejected a staged command or an epoch transition
    /// (revoking an unowned pattern, an empty transition, …).
    InvalidCommand(String),
    /// A sharded-service worker thread died (its channel disconnected,
    /// i.e. the thread panicked); the payload names the shard so the
    /// failure is attributable instead of an opaque poisoned panic.
    ShardWorker {
        /// Index of the shard whose worker disconnected.
        shard: usize,
    },
    /// A shard's mutex is poisoned: its worker panicked while holding the
    /// lock, so the in-memory state may be mid-job and cannot be trusted.
    /// Surfaces as a typed error instead of a propagated panic; a
    /// supervised service heals the shard from its last checkpoint plus
    /// the WAL tail instead of raising this.
    ShardPoisoned {
        /// Index of the shard whose state is poisoned.
        shard: usize,
    },
    /// Checkpoint/WAL persistence failed: an I/O error, a corrupt or
    /// truncated artifact, or a snapshot that does not fit the service it
    /// is being restored into.
    Durability(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidDistribution(msg) => write!(f, "invalid budget distribution: {msg}"),
            CoreError::Dp(e) => write!(f, "dp primitive error: {e}"),
            CoreError::UnknownPattern(id) => write!(f, "unknown pattern id {id}"),
            CoreError::MissingHistory => {
                write!(f, "adaptive PPM requires historical data; none provided")
            }
            CoreError::NotSetUp => write!(f, "engine must complete setup before serving"),
            CoreError::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "flip table width {got} does not match {expected} event types"
                )
            }
            CoreError::Detection(msg) => write!(f, "streaming detection error: {msg}"),
            CoreError::UnknownSubject(id) => {
                write!(f, "subject {id} is not registered with the service")
            }
            CoreError::InvalidService(msg) => write!(f, "invalid service use: {msg}"),
            CoreError::UnknownQuery(id) => write!(f, "unknown query id {id}"),
            CoreError::InvalidQuery(msg) => write!(f, "invalid consumer query: {msg}"),
            CoreError::InvalidCommand(msg) => write!(f, "invalid control-plane command: {msg}"),
            CoreError::ShardWorker { shard } => {
                write!(f, "shard {shard} worker thread died (channel disconnected)")
            }
            CoreError::ShardPoisoned { shard } => {
                write!(
                    f,
                    "shard {shard} state is poisoned (worker panicked mid-job)"
                )
            }
            CoreError::Durability(msg) => write!(f, "durability error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DpError> for CoreError {
    fn from(e: DpError) -> Self {
        CoreError::Dp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_source() {
        use std::error::Error;
        let e = CoreError::from(DpError::InvalidEpsilon(-1.0));
        assert!(e.to_string().contains("dp primitive"));
        assert!(e.source().is_some());
        assert!(CoreError::MissingHistory.source().is_none());
        assert!(CoreError::WidthMismatch {
            expected: 3,
            got: 5
        }
        .to_string()
        .contains('5'));
        assert!(CoreError::ShardWorker { shard: 3 }
            .to_string()
            .contains("shard 3"));
        assert!(CoreError::ShardPoisoned { shard: 2 }
            .to_string()
            .contains("shard 2"));
        assert!(CoreError::ShardPoisoned { shard: 2 }.source().is_none());
        assert!(CoreError::Durability("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }
}
