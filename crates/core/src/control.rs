//! The dynamic control plane: runtime churn compiled into epoch plans.
//!
//! The paper's setup phase (§III-A) fixes subjects, private patterns and
//! consumer queries before the service phase begins. A long-running
//! multi-tenant deployment cannot: tenants join, leave and change their
//! minds mid-stream. [`ControlPlane`] is the **control plane** of that
//! deployment — the data plane (shard engines pushing events and releasing
//! windows) never re-reads mutable registration state; instead:
//!
//! 1. runtime [`Command`]s (register/retire a subject, register/revoke a
//!    private pattern, add/remove a consumer query, provide history) are
//!    **staged** on the control plane. Staging assigns stable ids
//!    immediately — the pattern/query registries are *append-only*, a
//!    revoked entry is deactivated, never deleted, so every id ever handed
//!    out stays meaningful;
//! 2. a batch of staged commands is **compiled** into an immutable
//!    [`EpochPlan`]: a fresh [`OnlineCore`] (recompiled
//!    [`FlipTable`](crate::protect::FlipTable) +
//!    [`FlipPlan`](crate::protect::FlipPlan), detector pattern set, active
//!    query list) plus the per-subject charging schedule;
//! 3. the service fans the plan out to every shard with one **activation
//!    window index** (chosen from the release frontier the global low
//!    watermark drives): all shards — and any independent engine given the
//!    same `(activation, plan)` — switch on the same window, so the
//!    bit-for-bit equivalence anchors extend to the dynamic setting.
//!
//! **Determinism contract for command schedules.** A command schedule is
//! the sequence of staged commands plus the epoch boundaries at which
//! they were compiled (each boundary's activation index is part of the
//! schedule). Two executions of the same schedule — whatever the shard
//! count, batching or thread interleaving — produce identical plans and
//! identical releases, because (a) ids are assigned by staging order, (b)
//! compilation reads only control-plane state and the deterministic
//! effective history, and (c) activation is keyed to window indexes, not
//! wall-clock or call timing. A schedule with zero commands never
//! compiles a plan and reproduces the static service exactly.
//!
//! **Adaptive PPM, online.** Each epoch compile under
//! [`PpmKind::Adaptive`] re-runs Algorithm 1 (§V-B,
//! [`optimize_all`](crate::adaptive::optimize_all)) on the **effective
//! history**: the explicitly granted history followed by a bounded
//! sliding window of *released* (protected) population windows the
//! service feeds back via [`ControlPlane::observe_release`]. Using the
//! released view keeps the optimizer input on the public side of the
//! trust boundary (post-processing — no extra budget). §V-C correlation
//! widening can be pulled into every compile with
//! [`ControlPlane::set_correlate_widening`]. Budget spent in prior epochs
//! stays charged in the per-subject ledgers; a revoked pattern stops
//! charging but never refunds (see
//! [`EpochLedger`](pdp_dp::EpochLedger)).

use std::collections::{BTreeMap, HashMap, VecDeque};

use pdp_cep::{Pattern, PatternId, PatternSet, QueryId};
use pdp_dp::Epsilon;
use pdp_metrics::Alpha;
use pdp_stream::{IndicatorVector, WindowedIndicators};

use crate::answer::{Query, QuerySpec};
use crate::correlation::{find_correlates, widen_protection, Correlate};
use crate::engine::PpmKind;
use crate::error::CoreError;
use crate::protect::{Mechanism, ProtectionPipeline};
use crate::quality_model::QualityModel;
use crate::service::SubjectId;
use crate::streaming::{OnlineCore, QueryRef};

/// Construction parameters of a [`ControlPlane`].
#[derive(Debug, Clone)]
pub struct ControlPlaneConfig {
    /// Size of the event-type universe.
    pub n_types: usize,
    /// The consumers' quality weight (Eq. 3).
    pub alpha: Alpha,
    /// The PPM every epoch plan compiles.
    pub ppm: PpmKind,
    /// Capacity of the sliding released-window history feeding the online
    /// adaptive PPM (0 disables the sliding history; explicitly granted
    /// history is never truncated).
    pub history_window: usize,
}

/// One staged reconfiguration command. The typed [`ControlPlane`] methods
/// are thin wrappers over [`ControlPlane::submit`]; the enum form makes a
/// schedule replayable as data (the equivalence tests replay schedules
/// against independent engines, and the durability WAL persists staged
/// commands as records).
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// A new tenant joins (no private patterns yet). Re-registering a
    /// retired subject re-activates it.
    RegisterSubject(SubjectId),
    /// A tenant leaves: their events are rejected and their patterns stop
    /// charging from the next epoch on. Spend is never refunded.
    RetireSubject(SubjectId),
    /// A tenant declares a private pattern to protect (registers the
    /// subject implicitly).
    RegisterPrivatePattern {
        /// The declaring tenant.
        subject: SubjectId,
        /// The pattern to protect.
        pattern: Pattern,
    },
    /// A tenant withdraws a private pattern: it stops being protected and
    /// charged from the next epoch on; its id stays in the registry.
    RevokePrivatePattern {
        /// The owning tenant.
        subject: SubjectId,
        /// The pattern to revoke.
        pattern: PatternId,
    },
    /// A consumer registers a named target-pattern query.
    AddConsumerQuery {
        /// Display name.
        name: String,
        /// The target pattern asked about.
        pattern: Pattern,
    },
    /// A consumer registers a named §VII extension query (count,
    /// categorical, argmax) over already-registered patterns, in spec
    /// form (what [`crate::answer::Query::spec`] compiles to).
    AddTypedQuery {
        /// Display name.
        name: String,
        /// The query's registry form.
        spec: QuerySpec,
    },
    /// A consumer withdraws a query: later windows stop answering it.
    RemoveConsumerQuery(QueryId),
    /// Grant (replace) the explicitly provided historical data the
    /// adaptive PPM optimizes against.
    ProvideHistory(WindowedIndicators),
}

/// What staging one [`Command`] produced (the ids assigned, if any).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandOutcome {
    /// A subject was (re-)registered.
    Subject(SubjectId),
    /// A private pattern was registered.
    Pattern(PatternId),
    /// A consumer query was added.
    Query(QueryId, PatternId),
    /// A typed (extension) consumer query was added.
    TypedQuery(QueryId),
    /// The command changed state but assigned no id.
    Done,
}

#[derive(Debug, Clone)]
struct SubjectState {
    /// The dense intern index assigned at first registration (position in
    /// registration order). Stable forever — retirement and re-activation
    /// never reassign it — so the data plane can key per-subject state by
    /// a plain `Vec` index instead of hashing the raw 64-bit id.
    dense: u32,
    /// Every private pattern this subject ever registered, in order
    /// (revoked ones included — ids stay meaningful for spend lookups).
    patterns: Vec<PatternId>,
    retired: bool,
}

#[derive(Debug, Clone)]
struct QueryState {
    name: String,
    spec: QuerySpec,
    active: bool,
}

/// The compiled, immutable artifact of one epoch: what the data plane
/// runs until the next transition.
#[derive(Debug, Clone)]
pub struct EpochPlan {
    /// The epoch this plan belongs to (0 = the initial setup-phase build).
    pub epoch: u64,
    /// The compiled protection/answer core every shard engine switches to.
    pub core: OnlineCore,
    /// Per-release charging schedule: each release charges `subject` the
    /// pattern-level `ε` of each of *their* active patterns.
    pub charges: Vec<(SubjectId, PatternId, Epsilon)>,
    /// Per-release charging schedule of the non-boolean consumer queries
    /// (argmax draws): each shard release charges the query's dedicated
    /// `ε` to the service's query ledger.
    pub query_charges: Vec<(QueryId, Epsilon)>,
    /// Latent correlates pulled into the flip table (§V-C), when widening
    /// is enabled; empty otherwise.
    pub correlates: Vec<Correlate>,
}

/// Plain-data image of a [`ControlPlane`]'s dynamic state, as captured by
/// [`ControlPlane::snapshot`]. The construction-time
/// [`ControlPlaneConfig`] is *not* part of the image — recovery re-supplies
/// it, exactly like the service rebuilds compiled artifacts from
/// configuration — so a snapshot only carries what runtime commands have
/// changed. Collections are flattened into id-ordered vectors so equal
/// control planes snapshot identically.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlPlaneSnapshot {
    /// Append-only pattern registry (the derived type index is rebuilt on
    /// restore).
    pub patterns: PatternSet,
    /// Private-pattern registration order across all subjects.
    pub private_order: Vec<(SubjectId, PatternId)>,
    /// Revoked pattern ids, in revocation order.
    pub revoked: Vec<PatternId>,
    /// Per-subject `(id, dense intern index, owned patterns, retired)` in
    /// id order. The dense indexes are a permutation of `0..len`
    /// (registration order); restore rebuilds the reverse table from them.
    pub subjects: Vec<(SubjectId, u32, Vec<PatternId>, bool)>,
    /// Query registry rows `(name, spec, active)`; index = stable id.
    pub queries: Vec<(String, QuerySpec, bool)>,
    /// Explicitly granted history, if any.
    pub explicit_history: Option<Vec<IndicatorVector>>,
    /// The bounded sliding history of released windows, oldest first.
    pub released_history: Vec<IndicatorVector>,
    /// §V-C widening `(threshold, per-type ε)`, if enabled.
    pub widening: Option<(f64, Epsilon)>,
    /// The current epoch.
    pub epoch: u64,
    /// Whether the initial compile already ran.
    pub compiled_initial: bool,
    /// Whether staged commands await the next compile.
    pub dirty: bool,
}

/// The control plane itself. See the module docs for the full model.
#[derive(Debug, Clone)]
pub struct ControlPlane {
    config: ControlPlaneConfig,
    /// Append-only pattern registry (private + target + plain).
    patterns: PatternSet,
    /// Private-pattern registration order across all subjects — fixes the
    /// flip-table composition order, exactly like the static setup phase.
    private_order: Vec<(SubjectId, PatternId)>,
    revoked: Vec<PatternId>,
    subjects: BTreeMap<SubjectId, SubjectState>,
    /// Reverse dense-intern table: `by_dense[d]` is the subject holding
    /// dense index `d` (registration order, append-only).
    by_dense: Vec<SubjectId>,
    /// Query registry; index = stable [`QueryId`].
    queries: Vec<QueryState>,
    explicit_history: Option<WindowedIndicators>,
    /// Sliding history of released (protected) population windows,
    /// bounded by `config.history_window`.
    released_history: VecDeque<IndicatorVector>,
    widening: Option<(f64, Epsilon)>,
    epoch: u64,
    compiled_initial: bool,
    dirty: bool,
}

impl ControlPlane {
    /// A fresh control plane in the (empty) setup phase.
    pub fn new(config: ControlPlaneConfig) -> Self {
        ControlPlane {
            config,
            patterns: PatternSet::new(),
            private_order: Vec::new(),
            revoked: Vec::new(),
            subjects: BTreeMap::new(),
            by_dense: Vec::new(),
            queries: Vec::new(),
            explicit_history: None,
            released_history: VecDeque::new(),
            widening: None,
            epoch: 0,
            compiled_initial: false,
            dirty: false,
        }
    }

    /// Capture the dynamic state into a plain-data
    /// [`ControlPlaneSnapshot`]. Pair with [`ControlPlane::restore`].
    pub fn snapshot(&self) -> ControlPlaneSnapshot {
        ControlPlaneSnapshot {
            patterns: self.patterns.clone(),
            private_order: self.private_order.clone(),
            revoked: self.revoked.clone(),
            subjects: self
                .subjects
                .iter()
                .map(|(&id, s)| (id, s.dense, s.patterns.clone(), s.retired))
                .collect(),
            queries: self
                .queries
                .iter()
                .map(|q| (q.name.clone(), q.spec.clone(), q.active))
                .collect(),
            explicit_history: self
                .explicit_history
                .as_ref()
                .map(|h| h.iter().cloned().collect()),
            released_history: self.released_history.iter().cloned().collect(),
            widening: self.widening,
            epoch: self.epoch,
            compiled_initial: self.compiled_initial,
            dirty: self.dirty,
        }
    }

    /// Rebuild a control plane from a snapshot plus the construction-time
    /// config. The derived pattern-type index is reindexed, so snapshots
    /// that crossed a serialization boundary restore correctly.
    pub fn restore(config: ControlPlaneConfig, snapshot: ControlPlaneSnapshot) -> Self {
        let mut patterns = snapshot.patterns;
        patterns.reindex();
        // Rebuild the reverse intern table; the snapshot's dense indexes
        // must be a permutation of 0..len (the durability decoder enforces
        // this for images crossing a serialization boundary).
        let mut by_dense = vec![SubjectId(0); snapshot.subjects.len()];
        for &(id, dense, _, _) in &snapshot.subjects {
            assert!(
                (dense as usize) < by_dense.len(),
                "dense index {dense} out of range for {} subjects",
                by_dense.len()
            );
            by_dense[dense as usize] = id;
        }
        ControlPlane {
            config,
            patterns,
            private_order: snapshot.private_order,
            revoked: snapshot.revoked,
            subjects: snapshot
                .subjects
                .into_iter()
                .map(|(id, dense, patterns, retired)| {
                    (
                        id,
                        SubjectState {
                            dense,
                            patterns,
                            retired,
                        },
                    )
                })
                .collect(),
            by_dense,
            queries: snapshot
                .queries
                .into_iter()
                .map(|(name, spec, active)| QueryState { name, spec, active })
                .collect(),
            explicit_history: snapshot.explicit_history.map(WindowedIndicators::new),
            released_history: snapshot.released_history.into(),
            widening: snapshot.widening,
            epoch: snapshot.epoch,
            compiled_initial: snapshot.compiled_initial,
            dirty: snapshot.dirty,
        }
    }

    /// Stage one command; returns the ids it assigned.
    pub fn submit(&mut self, command: Command) -> Result<CommandOutcome, CoreError> {
        match command {
            Command::RegisterSubject(s) => Ok(CommandOutcome::Subject(self.register_subject(s))),
            Command::RetireSubject(s) => {
                self.retire_subject(s)?;
                Ok(CommandOutcome::Done)
            }
            Command::RegisterPrivatePattern { subject, pattern } => Ok(CommandOutcome::Pattern(
                self.register_private_pattern(subject, pattern),
            )),
            Command::RevokePrivatePattern { subject, pattern } => {
                self.revoke_private_pattern(subject, pattern)?;
                Ok(CommandOutcome::Done)
            }
            Command::AddConsumerQuery { name, pattern } => {
                let (q, p) = self.add_consumer_query(&name, pattern);
                Ok(CommandOutcome::Query(q, p))
            }
            Command::AddTypedQuery { name, spec } => {
                Ok(CommandOutcome::TypedQuery(self.add_query_spec(&name, spec)))
            }
            Command::RemoveConsumerQuery(q) => {
                self.remove_consumer_query(q)?;
                Ok(CommandOutcome::Done)
            }
            Command::ProvideHistory(windows) => {
                self.provide_history(windows);
                Ok(CommandOutcome::Done)
            }
        }
    }

    /// Stage: register a subject with no private patterns (or re-activate
    /// a retired one). First registration interns the subject under the
    /// next dense index; re-registration (even after retirement) keeps the
    /// original index.
    pub fn register_subject(&mut self, subject: SubjectId) -> SubjectId {
        if let Some(state) = self.subjects.get_mut(&subject) {
            if state.retired {
                state.retired = false;
                self.dirty = true;
            }
        } else {
            let dense = self.by_dense.len() as u32;
            self.by_dense.push(subject);
            self.subjects.insert(
                subject,
                SubjectState {
                    dense,
                    patterns: Vec::new(),
                    retired: false,
                },
            );
            self.dirty = true;
        }
        subject
    }

    /// Stage: a tenant leaves the service.
    pub fn retire_subject(&mut self, subject: SubjectId) -> Result<(), CoreError> {
        let state = self
            .subjects
            .get_mut(&subject)
            .ok_or(CoreError::UnknownSubject(subject.0))?;
        if !state.retired {
            state.retired = true;
            self.dirty = true;
        }
        Ok(())
    }

    /// Stage: declare a private pattern for `subject` (registering the
    /// subject implicitly). The id is assigned immediately; protection
    /// starts at the next epoch.
    pub fn register_private_pattern(&mut self, subject: SubjectId, pattern: Pattern) -> PatternId {
        self.register_subject(subject);
        let id = self.patterns.insert(pattern);
        self.private_order.push((subject, id));
        self.subjects
            .get_mut(&subject)
            .expect("just registered")
            .patterns
            .push(id);
        self.dirty = true;
        id
    }

    /// Stage: withdraw one of `subject`'s private patterns. The pattern
    /// stops being protected and charged at the next epoch; spend already
    /// recorded is never refunded.
    pub fn revoke_private_pattern(
        &mut self,
        subject: SubjectId,
        pattern: PatternId,
    ) -> Result<(), CoreError> {
        let state = self
            .subjects
            .get(&subject)
            .ok_or(CoreError::UnknownSubject(subject.0))?;
        if !state.patterns.contains(&pattern) {
            return Err(CoreError::InvalidCommand(format!(
                "{subject} does not own pattern {pattern}"
            )));
        }
        if self.revoked.contains(&pattern) {
            return Err(CoreError::InvalidCommand(format!(
                "pattern {pattern} is already revoked"
            )));
        }
        self.revoked.push(pattern);
        self.dirty = true;
        Ok(())
    }

    /// Stage: register a pattern that is neither private nor queried
    /// (kept for [`PatternId`] parity with an external registry).
    pub fn register_pattern(&mut self, pattern: Pattern) -> PatternId {
        self.dirty = true;
        self.patterns.insert(pattern)
    }

    /// Stage: add a named consumer query. Answered from the next epoch on
    /// (or from epoch 0 when staged before the initial build).
    pub fn add_consumer_query(&mut self, name: &str, pattern: Pattern) -> (QueryId, PatternId) {
        let pid = self.patterns.insert(pattern);
        let qid = self.add_query_spec(name, QuerySpec::Pattern { pattern: pid });
        (qid, pid)
    }

    /// Stage: add a named §VII extension query ([`CountQuery`],
    /// [`CategoricalQuery`], [`ArgmaxQuery`] — anything implementing
    /// [`Query`]) over already-registered patterns. The query joins the
    /// same append-only registry as pattern queries: it receives the next
    /// stable [`QueryId`], compiles into every subsequent epoch plan, and
    /// is answered (typed) on the protected view inside the release path.
    /// Dangling pattern references are rejected at the next compile.
    ///
    /// [`CountQuery`]: crate::extensions::CountQuery
    /// [`CategoricalQuery`]: crate::extensions::CategoricalQuery
    /// [`ArgmaxQuery`]: crate::answer::ArgmaxQuery
    pub fn add_typed_query(&mut self, name: &str, query: &dyn Query) -> QueryId {
        self.add_query_spec(name, query.spec())
    }

    /// Append one query spec to the registry under the next stable id.
    fn add_query_spec(&mut self, name: &str, spec: QuerySpec) -> QueryId {
        let qid = QueryId(self.queries.len() as u32);
        self.queries.push(QueryState {
            name: name.to_owned(),
            spec,
            active: true,
        });
        self.dirty = true;
        qid
    }

    /// Stage: withdraw a consumer query; later windows stop answering it.
    pub fn remove_consumer_query(&mut self, query: QueryId) -> Result<(), CoreError> {
        let state = self
            .queries
            .get_mut(query.0 as usize)
            .ok_or(CoreError::UnknownQuery(query.0))?;
        if !state.active {
            return Err(CoreError::InvalidCommand(format!(
                "query {} is already removed",
                query.0
            )));
        }
        state.active = false;
        self.dirty = true;
        Ok(())
    }

    /// Stage: grant (replace) explicitly provided historical data.
    pub fn provide_history(&mut self, windows: WindowedIndicators) {
        self.explicit_history = Some(windows);
        self.dirty = true;
    }

    /// Enable (or disable, with `None`) §V-C correlation widening at every
    /// subsequent compile: event types whose historical lift against an
    /// active private pattern exceeds `threshold` receive randomized
    /// response with per-type budget `eps`, composed onto the epoch's
    /// table.
    pub fn set_correlate_widening(&mut self, widening: Option<(f64, Epsilon)>) {
        self.widening = widening;
        self.dirty = true;
    }

    /// Feed one released (protected) population window into the bounded
    /// sliding history. Called by the service per merged release; safe on
    /// the public side of the trust boundary (post-processing).
    pub fn observe_release(&mut self, window: &IndicatorVector) {
        if self.config.history_window == 0 {
            return;
        }
        if self.released_history.len() == self.config.history_window {
            self.released_history.pop_front();
        }
        self.released_history.push_back(window.clone());
    }

    /// True when staged commands await the next epoch compile.
    pub fn has_pending(&self) -> bool {
        self.dirty
    }

    /// The current epoch (0 until the first transition compiles).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The append-only pattern registry.
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// The single source of truth for "protected by the next compile":
    /// `(subject, pattern)` pairs in registration order, minus
    /// revocations and retired subjects. Both the pipeline's pattern list
    /// and the charging schedule derive from this one filter, so they
    /// cannot drift apart.
    fn active_private_pairs(&self) -> impl Iterator<Item = (SubjectId, PatternId)> + '_ {
        self.private_order
            .iter()
            .filter(|(subject, pid)| {
                !self.revoked.contains(pid)
                    && self.subjects.get(subject).is_some_and(|s| !s.retired)
            })
            .copied()
    }

    /// Ids of the private patterns protected by the *next* compile:
    /// registration order, minus revocations and retired subjects.
    pub fn active_private(&self) -> Vec<PatternId> {
        self.active_private_pairs().map(|(_, pid)| pid).collect()
    }

    /// The non-retired subjects, in id order.
    pub fn active_subjects(&self) -> Vec<SubjectId> {
        self.subjects
            .iter()
            .filter(|(_, s)| !s.retired)
            .map(|(&id, _)| id)
            .collect()
    }

    /// The dense intern index assigned to `subject` at first registration
    /// (`None` for a subject never registered). Stable across retirement
    /// and re-registration, and deterministic: the same command schedule
    /// assigns the same indexes.
    pub fn dense_index(&self, subject: SubjectId) -> Option<u32> {
        self.subjects.get(&subject).map(|s| s.dense)
    }

    /// The subject holding dense index `dense`, if assigned.
    pub fn subject_of_dense(&self, dense: u32) -> Option<SubjectId> {
        self.by_dense.get(dense as usize).copied()
    }

    /// Number of dense indexes assigned so far (= subjects ever
    /// registered; the registry is append-only).
    pub fn dense_count(&self) -> usize {
        self.by_dense.len()
    }

    /// Whether `subject` is registered and not retired — with its dense
    /// index when so. One probe for the service's route-table rebuilds.
    pub fn active_dense_index(&self, subject: SubjectId) -> Option<u32> {
        self.subjects
            .get(&subject)
            .filter(|s| !s.retired)
            .map(|s| s.dense)
    }

    /// True if `subject` ever registered `pattern` (revoked ones
    /// included — the spend they accrued stays queryable).
    pub fn owns_pattern(&self, subject: SubjectId, pattern: PatternId) -> bool {
        self.subjects
            .get(&subject)
            .is_some_and(|s| s.patterns.contains(&pattern))
    }

    /// True if `subject` is registered (retired or not).
    pub fn knows_subject(&self, subject: SubjectId) -> bool {
        self.subjects.contains_key(&subject)
    }

    /// The history the next adaptive compile optimizes against: the
    /// explicitly granted windows (never truncated) followed by the
    /// bounded sliding history of released windows. `None` when neither
    /// exists.
    pub fn effective_history(&self) -> Option<WindowedIndicators> {
        if self.explicit_history.is_none() && self.released_history.is_empty() {
            return None;
        }
        let mut windows: Vec<IndicatorVector> = self
            .explicit_history
            .as_ref()
            .map(|h| h.iter().cloned().collect())
            .unwrap_or_default();
        windows.extend(self.released_history.iter().cloned());
        Some(WindowedIndicators::new(windows))
    }

    /// Compile the setup phase into the epoch-0 plan (the static build).
    /// Exactly one initial compile is allowed.
    pub fn compile_initial(&mut self) -> Result<EpochPlan, CoreError> {
        if self.compiled_initial {
            return Err(CoreError::InvalidCommand(
                "the initial epoch is already compiled; use compile_next".into(),
            ));
        }
        let plan = self.compile()?;
        self.compiled_initial = true;
        self.dirty = false;
        Ok(plan)
    }

    /// Compile every staged command into the next epoch's plan. Requires
    /// the initial compile; rejects an empty transition (nothing staged).
    pub fn compile_next(&mut self) -> Result<EpochPlan, CoreError> {
        if !self.compiled_initial {
            return Err(CoreError::InvalidCommand(
                "compile_initial must run before epoch transitions".into(),
            ));
        }
        if !self.dirty {
            return Err(CoreError::InvalidCommand(
                "no staged commands to compile".into(),
            ));
        }
        self.epoch += 1;
        let plan = self.compile();
        if plan.is_err() {
            // a failed compile must not burn the epoch number
            self.epoch -= 1;
        } else {
            self.dirty = false;
        }
        plan
    }

    fn compile(&self) -> Result<EpochPlan, CoreError> {
        let active_private = self.active_private();
        let active_queries: Vec<QueryRef> = self
            .queries
            .iter()
            .enumerate()
            .filter(|(_, q)| q.active)
            .map(|(i, q)| QueryRef {
                id: QueryId(i as u32),
                name: q.name.clone(),
                spec: q.spec.clone(),
            })
            .collect();
        let n_types = self.config.n_types;
        // one materialization shared by the adaptive model and the
        // widening pass (both deep-copy the windows otherwise)
        let mut history = self.effective_history();
        let pipeline = match &self.config.ppm {
            PpmKind::PassThrough => ProtectionPipeline::from_assignments(
                "pass-through",
                &self.patterns,
                Vec::new(),
                n_types,
            )?,
            PpmKind::Uniform { eps } => {
                ProtectionPipeline::uniform(&self.patterns, &active_private, *eps, n_types)?
            }
            PpmKind::Adaptive { eps, config } => {
                // the model takes ownership; keep a copy only when the
                // widening pass still needs the windows afterwards
                let history = if self.widening.is_some() {
                    history.clone()
                } else {
                    history.take()
                }
                .ok_or(CoreError::MissingHistory)?;
                let mut target_ids: Vec<PatternId> = Vec::new();
                for q in &active_queries {
                    for pid in q.spec.referenced_patterns() {
                        if !target_ids.contains(&pid) {
                            target_ids.push(pid);
                        }
                    }
                }
                let model =
                    QualityModel::new(history, &self.patterns, &target_ids, self.config.alpha)?;
                ProtectionPipeline::adaptive(
                    &self.patterns,
                    &active_private,
                    *eps,
                    &model,
                    n_types,
                    config,
                )?
            }
        };
        let (pipeline, correlates) = match self.widening {
            Some((threshold, correlate_eps)) => {
                let history = history.as_ref().ok_or(CoreError::MissingHistory)?;
                let correlates =
                    find_correlates(history, &self.patterns, &active_private, threshold)?;
                let widened = widen_protection(pipeline.flip_table(), &correlates, correlate_eps)?;
                (
                    ProtectionPipeline::from_table(
                        &format!("{}+correlates", pipeline.name()),
                        widened,
                        pipeline.assignments().to_vec(),
                    ),
                    correlates,
                )
            }
            None => (pipeline, Vec::new()),
        };
        let core =
            OnlineCore::with_queries(pipeline, self.patterns.clone(), active_queries, self.epoch)?;
        let budgets: HashMap<PatternId, Epsilon> = core.pipeline().budgets().into_iter().collect();
        let charges = self
            .active_private_pairs()
            .filter_map(|(subject, pid)| budgets.get(&pid).map(|&eps| (subject, pid, eps)))
            .collect();
        let query_charges = core.query_charges();
        Ok(EpochPlan {
            epoch: self.epoch,
            core,
            charges,
            query_charges,
            correlates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveConfig;
    use pdp_stream::EventType;

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn plane(ppm: PpmKind) -> ControlPlane {
        ControlPlane::new(ControlPlaneConfig {
            n_types: 4,
            alpha: Alpha::HALF,
            ppm,
            history_window: 8,
        })
    }

    #[test]
    fn ids_are_stable_across_revocation_and_removal() {
        let mut cp = plane(PpmKind::Uniform { eps: eps(1.0) });
        let p0 = cp.register_private_pattern(SubjectId(1), Pattern::single("a", t(0)));
        let (q0, qp) = cp.add_consumer_query("t2?", Pattern::single("t2", t(2)));
        let p1 = cp.register_private_pattern(SubjectId(2), Pattern::single("b", t(1)));
        assert_eq!((p0.0, qp.0, p1.0), (0, 1, 2));
        cp.compile_initial().unwrap();

        cp.revoke_private_pattern(SubjectId(1), p0).unwrap();
        cp.remove_consumer_query(q0).unwrap();
        let plan = cp.compile_next().unwrap();
        assert_eq!(plan.epoch, 1);
        // ids survive deactivation: the registry still resolves them …
        assert!(cp.patterns().get(p0).is_some());
        assert!(cp.owns_pattern(SubjectId(1), p0));
        // … but the plan no longer protects, charges or answers them
        assert_eq!(cp.active_private(), vec![p1]);
        assert!(plan.core.queries().is_empty());
        assert_eq!(plan.charges.len(), 1);
        assert_eq!(plan.charges[0].0, SubjectId(2));
        // double revocation / removal is rejected
        assert!(cp.revoke_private_pattern(SubjectId(1), p0).is_err());
        assert!(cp.remove_consumer_query(q0).is_err());
        // a later registration continues the id sequence
        let p3 = cp.register_private_pattern(SubjectId(1), Pattern::single("c", t(3)));
        assert_eq!(p3.0, 3);
    }

    #[test]
    fn retirement_drops_patterns_and_reactivation_restores_them() {
        let mut cp = plane(PpmKind::Uniform { eps: eps(1.0) });
        let p0 = cp.register_private_pattern(SubjectId(1), Pattern::single("a", t(0)));
        cp.compile_initial().unwrap();
        cp.retire_subject(SubjectId(1)).unwrap();
        let plan = cp.compile_next().unwrap();
        assert!(plan.charges.is_empty());
        assert!(cp.active_subjects().is_empty());
        assert!(cp.knows_subject(SubjectId(1)));
        // re-registration re-activates the tenant and their patterns
        cp.register_subject(SubjectId(1));
        let plan = cp.compile_next().unwrap();
        assert_eq!(cp.active_private(), vec![p0]);
        assert_eq!(plan.charges.len(), 1);
        // retiring an unknown subject is an error
        assert!(matches!(
            cp.retire_subject(SubjectId(99)),
            Err(CoreError::UnknownSubject(99))
        ));
    }

    #[test]
    fn transitions_require_initial_compile_and_staged_commands() {
        let mut cp = plane(PpmKind::Uniform { eps: eps(1.0) });
        cp.register_private_pattern(SubjectId(1), Pattern::single("a", t(0)));
        assert!(cp.compile_next().is_err(), "no initial compile yet");
        cp.compile_initial().unwrap();
        assert!(cp.compile_initial().is_err(), "initial compile is unique");
        assert!(!cp.has_pending());
        assert!(cp.compile_next().is_err(), "empty transition rejected");
        cp.register_subject(SubjectId(2));
        assert!(cp.has_pending());
        assert_eq!(cp.compile_next().unwrap().epoch, 1);
        assert_eq!(cp.epoch(), 1);
    }

    #[test]
    fn failed_compile_does_not_burn_the_epoch() {
        // adaptive without history fails; the epoch counter must not move
        let mut cp = plane(PpmKind::Adaptive {
            eps: eps(1.0),
            config: AdaptiveConfig::default(),
        });
        cp.register_private_pattern(SubjectId(1), Pattern::seq("p", vec![t(0), t(1)]).unwrap());
        assert!(matches!(
            cp.compile_initial(),
            Err(CoreError::MissingHistory)
        ));
        cp.provide_history(WindowedIndicators::new(vec![
            IndicatorVector::from_present([t(0)], 4),
            IndicatorVector::empty(4),
        ]));
        cp.compile_initial().unwrap();
        assert_eq!(cp.epoch(), 0);
    }

    #[test]
    fn command_enum_replays_like_the_typed_methods() {
        let mut a = plane(PpmKind::Uniform { eps: eps(2.0) });
        let mut b = plane(PpmKind::Uniform { eps: eps(2.0) });
        let schedule = vec![
            Command::RegisterSubject(SubjectId(9)),
            Command::RegisterPrivatePattern {
                subject: SubjectId(1),
                pattern: Pattern::seq("p", vec![t(0), t(1)]).unwrap(),
            },
            Command::AddConsumerQuery {
                name: "t2?".into(),
                pattern: Pattern::single("t2", t(2)),
            },
        ];
        for cmd in &schedule {
            a.submit(cmd.clone()).unwrap();
        }
        b.register_subject(SubjectId(9));
        b.register_private_pattern(SubjectId(1), Pattern::seq("p", vec![t(0), t(1)]).unwrap());
        b.add_consumer_query("t2?", Pattern::single("t2", t(2)));
        let pa = a.compile_initial().unwrap();
        let pb = b.compile_initial().unwrap();
        assert_eq!(pa.charges, pb.charges);
        assert_eq!(
            pa.core.pipeline().flip_table().probs(),
            pb.core.pipeline().flip_table().probs()
        );
        assert_eq!(pa.core.queries(), pb.core.queries());
    }

    #[test]
    fn sliding_history_is_bounded_and_follows_explicit_grants() {
        let mut cp = plane(PpmKind::Uniform { eps: eps(1.0) });
        assert!(cp.effective_history().is_none());
        let explicit = WindowedIndicators::new(vec![IndicatorVector::from_present([t(0)], 4); 3]);
        cp.provide_history(explicit);
        for k in 0..20 {
            cp.observe_release(&IndicatorVector::from_present([t(k % 4)], 4));
        }
        let history = cp.effective_history().unwrap();
        // 3 explicit (never truncated) + the last 8 released
        assert_eq!(history.len(), 3 + 8);
        assert!(history.window(0).get(t(0)));
        // the sliding tail holds the *latest* releases (12..=19 → types ...)
        assert!(history.window(3).get(t(12 % 4)));
        assert!(history.window(10).get(t(19 % 4)));
    }

    #[test]
    fn snapshot_round_trip_preserves_schedule_semantics() {
        let mut cp = plane(PpmKind::Uniform { eps: eps(2.0) });
        let p0 =
            cp.register_private_pattern(SubjectId(1), Pattern::seq("p", vec![t(0), t(1)]).unwrap());
        cp.add_consumer_query("t2?", Pattern::single("t2", t(2)));
        cp.compile_initial().unwrap();
        cp.revoke_private_pattern(SubjectId(1), p0).unwrap();
        cp.register_private_pattern(SubjectId(3), Pattern::single("q", t(3)));
        cp.provide_history(WindowedIndicators::new(vec![IndicatorVector::empty(4)]));
        for k in 0..3 {
            cp.observe_release(&IndicatorVector::from_present([t(k)], 4));
        }
        cp.set_correlate_widening(None);

        let snap = cp.snapshot();
        let mut restored = ControlPlane::restore(
            ControlPlaneConfig {
                n_types: 4,
                alpha: Alpha::HALF,
                ppm: PpmKind::Uniform { eps: eps(2.0) },
                history_window: 8,
            },
            snap.clone(),
        );
        // the snapshot is a fixed point …
        assert_eq!(restored.snapshot(), snap);
        // … and both planes compile the identical next epoch
        assert!(restored.has_pending());
        assert_eq!(restored.epoch(), cp.epoch());
        let pa = cp.compile_next().unwrap();
        let pb = restored.compile_next().unwrap();
        assert_eq!(pa.epoch, pb.epoch);
        assert_eq!(pa.charges, pb.charges);
        assert_eq!(
            pa.core.pipeline().flip_table().probs(),
            pb.core.pipeline().flip_table().probs()
        );
        // the reindexed registry still resolves type lookups
        assert_eq!(restored.patterns().containing(t(3)).len(), 1);
        // subsequent ids continue the sequence identically
        let ia = cp.register_pattern(Pattern::single("z", t(0)));
        let ib = restored.register_pattern(Pattern::single("z", t(0)));
        assert_eq!(ia, ib);
    }

    #[test]
    fn widening_pulls_correlates_into_the_epoch_table() {
        let mut cp = plane(PpmKind::Uniform { eps: eps(1.0) });
        cp.register_private_pattern(SubjectId(1), Pattern::single("p", t(0)));
        // history where t(2) rides along with t(0)
        let mut windows = Vec::new();
        for k in 0..60 {
            let mut present = Vec::new();
            if k % 2 == 0 {
                present.extend([t(0), t(2)]);
            }
            if k % 7 == 0 {
                present.push(t(2));
            }
            windows.push(IndicatorVector::from_present(present, 4));
        }
        cp.provide_history(WindowedIndicators::new(windows));
        cp.set_correlate_widening(Some((1.3, eps(1.0))));
        let plan = cp.compile_initial().unwrap();
        assert!(plan.correlates.iter().any(|c| c.ty == t(2)));
        let table = plan.core.pipeline().flip_table();
        assert!(table.prob(t(2)).value() > 0.0);
        assert!(table.prob(t(0)).value() > 0.0);
        assert_eq!(plan.core.pipeline().name(), "uniform+correlates");
    }
}
