//! Beyond-binary answers (paper §V: "We see the potential to further
//! extend these PPMs so that they can process queries that require
//! numerical or categorical answers").
//!
//! Two extension query kinds, both answered from the *protected* indicator
//! view so the pattern-level guarantee is inherited by post-processing
//! (no extra budget is spent):
//!
//! * [`CategoricalQuery`] — "which of these patterns describes the window?"
//!   with a priority order (first detected option wins) and a fallback
//!   category;
//! * [`CountQuery`] — "in how many of the last windows was the pattern
//!   detected?" — the paper's own example ("drivers can be interested in
//!   the numbers of nearby passengers … their true intention is to know if
//!   this area is crowded"), with an optional crowdedness threshold
//!   recovering the binary reading.

use pdp_cep::{match_indicator, PatternId, PatternSet};
use pdp_dp::{DpRng, Epsilon, Exponential};
use pdp_stream::WindowedIndicators;
use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// A categorical continuous query: per window, the answer is the label of
/// the first detected option, or the fallback label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoricalQuery {
    /// Candidate categories in priority order: `(label, pattern)`.
    pub options: Vec<(String, PatternId)>,
    /// The label when no option's pattern is detected.
    pub fallback: String,
}

impl CategoricalQuery {
    /// Build; at least one option is required.
    pub fn new(options: Vec<(String, PatternId)>, fallback: &str) -> Result<Self, CoreError> {
        if options.is_empty() {
            return Err(CoreError::InvalidDistribution(
                "categorical query needs at least one option".into(),
            ));
        }
        Ok(CategoricalQuery {
            options,
            fallback: fallback.to_owned(),
        })
    }

    /// Answer over (protected) windows: one label per window.
    pub fn answer(
        &self,
        patterns: &PatternSet,
        windows: &WindowedIndicators,
    ) -> Result<Vec<String>, CoreError> {
        let compiled: Vec<(&str, &pdp_cep::Pattern)> = self
            .options
            .iter()
            .map(|(label, id)| {
                patterns
                    .get(*id)
                    .map(|p| (label.as_str(), p))
                    .ok_or(CoreError::UnknownPattern(id.0))
            })
            .collect::<Result<_, _>>()?;
        Ok(windows
            .iter()
            .map(|w| {
                compiled
                    .iter()
                    .find(|(_, p)| match_indicator(p, w))
                    .map(|(label, _)| label.to_string())
                    .unwrap_or_else(|| self.fallback.clone())
            })
            .collect())
    }
}

/// A windowed count query with an optional binary threshold.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountQuery {
    /// The pattern being counted.
    pub pattern: PatternId,
    /// Counting scope: the trailing `horizon` windows.
    pub horizon: usize,
}

impl CountQuery {
    /// Build; the horizon must be at least 1.
    pub fn new(pattern: PatternId, horizon: usize) -> Result<Self, CoreError> {
        if horizon == 0 {
            return Err(CoreError::InvalidDistribution(
                "count horizon must be at least 1".into(),
            ));
        }
        Ok(CountQuery { pattern, horizon })
    }

    /// Per-window trailing counts over (protected) windows.
    pub fn answer(
        &self,
        patterns: &PatternSet,
        windows: &WindowedIndicators,
    ) -> Result<Vec<usize>, CoreError> {
        let p = patterns
            .get(self.pattern)
            .ok_or(CoreError::UnknownPattern(self.pattern.0))?;
        let hits: Vec<bool> = windows.iter().map(|w| match_indicator(p, w)).collect();
        let mut out = Vec::with_capacity(hits.len());
        let mut rolling = 0usize;
        for (i, &h) in hits.iter().enumerate() {
            rolling += usize::from(h);
            if i >= self.horizon {
                rolling -= usize::from(hits[i - self.horizon]);
            }
            out.push(rolling);
        }
        Ok(out)
    }

    /// The paper's binary reading: "is this area crowded?" — trailing count
    /// at or above `threshold`.
    pub fn answer_thresholded(
        &self,
        patterns: &PatternSet,
        windows: &WindowedIndicators,
        threshold: usize,
    ) -> Result<Vec<bool>, CoreError> {
        Ok(self
            .answer(patterns, windows)?
            .into_iter()
            .map(|c| c >= threshold)
            .collect())
    }
}

/// "Which pattern dominated?" answered with the **exponential mechanism**
/// and a *dedicated* budget — the alternative to post-processing when the
/// consumer needs the selection itself to be ε-DP against the raw stream
/// (e.g. the engine is asked before any pattern-level protection is set
/// up).
///
/// Utility of candidate `c` = number of windows in which `c` was detected;
/// changing one event in one window changes any candidate's count by at
/// most 1, so the utility sensitivity is 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoisyArgmax {
    /// Candidate patterns: `(label, id)`.
    pub candidates: Vec<(String, PatternId)>,
}

impl NoisyArgmax {
    /// Build; at least one candidate is required.
    pub fn new(candidates: Vec<(String, PatternId)>) -> Result<Self, CoreError> {
        if candidates.is_empty() {
            return Err(CoreError::InvalidDistribution(
                "noisy argmax needs at least one candidate".into(),
            ));
        }
        Ok(NoisyArgmax { candidates })
    }

    /// Select the (noisily) most frequent candidate over `windows`,
    /// spending `eps` through the exponential mechanism.
    pub fn select(
        &self,
        patterns: &PatternSet,
        windows: &WindowedIndicators,
        eps: Epsilon,
        rng: &mut DpRng,
    ) -> Result<String, CoreError> {
        let utilities: Vec<f64> = self
            .candidates
            .iter()
            .map(|(_, id)| {
                let p = patterns.get(*id).ok_or(CoreError::UnknownPattern(id.0))?;
                Ok(windows.iter().filter(|w| match_indicator(p, w)).count() as f64)
            })
            .collect::<Result<_, CoreError>>()?;
        let mechanism = Exponential::new(eps, 1.0).map_err(CoreError::Dp)?;
        let idx = mechanism
            .select(&utilities, rng)
            .expect("candidates verified non-empty");
        Ok(self.candidates[idx].0.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdp_cep::Pattern;
    use pdp_stream::{EventType, IndicatorVector};

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    fn setup() -> (PatternSet, PatternId, PatternId, WindowedIndicators) {
        let mut set = PatternSet::new();
        let busy = set.insert(Pattern::single("busy", t(0)));
        let quiet = set.insert(Pattern::single("quiet", t(1)));
        let windows = WindowedIndicators::new(vec![
            IndicatorVector::from_present([t(0)], 3),
            IndicatorVector::from_present([t(1)], 3),
            IndicatorVector::from_present([t(0), t(1)], 3),
            IndicatorVector::empty(3),
        ]);
        (set, busy, quiet, windows)
    }

    #[test]
    fn categorical_answers_first_match_then_fallback() {
        let (set, busy, quiet, windows) = setup();
        let q = CategoricalQuery::new(
            vec![("busy".into(), busy), ("quiet".into(), quiet)],
            "unknown",
        )
        .unwrap();
        let answers = q.answer(&set, &windows).unwrap();
        assert_eq!(answers, ["busy", "quiet", "busy", "unknown"]);
    }

    #[test]
    fn categorical_validates() {
        assert!(CategoricalQuery::new(vec![], "x").is_err());
        let (set, _, _, windows) = setup();
        let q = CategoricalQuery::new(vec![("x".into(), PatternId(9))], "f").unwrap();
        assert!(q.answer(&set, &windows).is_err());
    }

    #[test]
    fn count_query_rolls_over_horizon() {
        let (set, busy, _, windows) = setup();
        let q = CountQuery::new(busy, 2).unwrap();
        // busy hits: [1, 0, 1, 0]; trailing-2 counts: [1, 1, 1, 1]
        assert_eq!(q.answer(&set, &windows).unwrap(), vec![1, 1, 1, 1]);
        let q3 = CountQuery::new(busy, 3).unwrap();
        // trailing-3: [1, 1, 2, 1]
        assert_eq!(q3.answer(&set, &windows).unwrap(), vec![1, 1, 2, 1]);
    }

    #[test]
    fn thresholded_count_is_binary_crowding() {
        let (set, busy, _, windows) = setup();
        let q = CountQuery::new(busy, 3).unwrap();
        assert_eq!(
            q.answer_thresholded(&set, &windows, 2).unwrap(),
            vec![false, false, true, false]
        );
    }

    #[test]
    fn count_query_validates() {
        let (set, busy, _, windows) = setup();
        assert!(CountQuery::new(busy, 0).is_err());
        let q = CountQuery::new(PatternId(9), 2).unwrap();
        assert!(q.answer(&set, &windows).is_err());
    }

    #[test]
    fn noisy_argmax_prefers_frequent_pattern() {
        let (set, busy, quiet, _) = setup();
        // busy detected in 9 of 10 windows, quiet in 1
        let mut windows = Vec::new();
        for k in 0..10 {
            let present = if k == 0 { vec![t(1)] } else { vec![t(0)] };
            windows.push(IndicatorVector::from_present(present, 3));
        }
        let windows = WindowedIndicators::new(windows);
        let q = NoisyArgmax::new(vec![("busy".into(), busy), ("quiet".into(), quiet)]).unwrap();
        let mut rng = DpRng::seed_from(4);
        let mut busy_wins = 0;
        for _ in 0..200 {
            if q.select(&set, &windows, Epsilon::new(2.0).unwrap(), &mut rng)
                .unwrap()
                == "busy"
            {
                busy_wins += 1;
            }
        }
        assert!(busy_wins > 150, "busy selected only {busy_wins}/200");
        // at ε = 0 the choice is a coin flip
        let mut even = 0;
        for _ in 0..400 {
            if q.select(&set, &windows, Epsilon::ZERO, &mut rng).unwrap() == "quiet" {
                even += 1;
            }
        }
        assert!(
            (even as f64 / 400.0 - 0.5).abs() < 0.1,
            "quiet rate {even}/400"
        );
    }

    #[test]
    fn noisy_argmax_validates() {
        assert!(NoisyArgmax::new(vec![]).is_err());
        let (set, _, _, windows) = setup();
        let q = NoisyArgmax::new(vec![("x".into(), PatternId(9))]).unwrap();
        let mut rng = DpRng::seed_from(1);
        assert!(q
            .select(&set, &windows, Epsilon::new(1.0).unwrap(), &mut rng)
            .is_err());
    }

    #[test]
    fn answers_inherit_protection_by_post_processing() {
        // answering on a protected view uses only the released bits —
        // demonstrate the plumbing end-to-end
        use crate::protect::{Mechanism, ProtectionPipeline};
        use pdp_dp::{DpRng, Epsilon};
        let (set, busy, _, windows) = setup();
        let pipeline =
            ProtectionPipeline::uniform(&set, &[busy], Epsilon::new(0.5).unwrap(), 3).unwrap();
        let mut rng = DpRng::seed_from(3);
        let protected = pipeline.protect(&windows, &mut rng);
        let q = CountQuery::new(busy, 2).unwrap();
        let counts = q.answer(&set, &protected).unwrap();
        assert_eq!(counts.len(), windows.len());
        assert!(counts.iter().all(|&c| c <= 2));
    }
}
