//! The push-based streaming service layer (§III, Fig. 1–2).
//!
//! The paper's model is an *unbounded* stream: data subjects emit events
//! continuously, the trusted engine maintains the open window, and every
//! window close is a **release** — the only moment protected information
//! leaves the engine. [`StreamingEngine`] implements exactly that loop:
//!
//! 1. events arrive one at a time ([`StreamingEngine::push`]); the engine
//!    drives an [`IncrementalDetector`] for raw per-pattern detections and
//!    maintains the open window's indicator vector;
//! 2. when an event (or a watermark heartbeat,
//!    [`StreamingEngine::advance_watermark`]) moves time past the open
//!    window, every closed window is released: the [`FlipTable`] randomized
//!    response perturbs the private bits, the budget ledger records each
//!    protected pattern's spend for that release, and every registered
//!    consumer query is answered from the *protected* view only;
//! 3. the typed answers (keyed by stable query id) and the protected
//!    indicator vector come back as [`WindowRelease`]s for downstream
//!    consumers; the raw detections ride along **sealed** in a
//!    [`TrustedAudit`] only quality metering can open.
//!
//! [`OnlineCore`] is the **single protection + accounting code path**: the
//! batch [`crate::engine::TrustedEngine`] service methods are
//! thin adapters that replay a windowed history through the same
//! [`OnlineCore::release_window`], so batch and streaming are equivalent by
//! construction (and verified equivalent under a seeded
//! [`DpRng`] in the test suite).
//!
//! # Allocation contract
//!
//! The drain-style entry points ([`StreamingEngine::push_into`],
//! [`StreamingEngine::advance_watermark_into`]) are the per-event hot
//! path of the sharded service above this layer, and they uphold a
//! strict contract: **an event (or heartbeat) that closes no window
//! performs no heap allocation.** Closed-window rows land in a
//! persistent `closed_scratch` buffer that is drained and handed back on
//! every call, and releases append into the *caller's* reused buffer —
//! the only allocating work left is building the released window's
//! protected view, which happens exactly once per window close, never
//! per event. The sharded service's CI-gated zero-allocation ingest
//! measurement (`bench-json --alloc` under a counting global allocator)
//! bottoms out in this contract.
//!
//! [`FlipTable`]: crate::protect::FlipTable

use std::collections::VecDeque;
use std::sync::Arc;

use pdp_cep::{
    ClosedWindow, IncrementalDetector, PatternId, PatternSet, PreparedPatternSwap, QueryId,
    Semantics,
};
use pdp_dp::{BudgetLedger, DpRng, Epsilon};
use pdp_metrics::TrustedAudit;
use pdp_stream::{Event, IndicatorVector, TimeDelta, Timestamp};

use crate::answer::{Answer, CompiledQuery, QuerySpec, QueryStateSet};
use crate::engine::TrustedEngine;
use crate::error::CoreError;
use crate::protect::ProtectionPipeline;

/// One registered consumer query, carried by the compiled core with its
/// **stable** [`QueryId`]: under the dynamic control plane queries can be
/// removed and later windows answer a different (sub)set, so a release's
/// `answers[i]` is identified by `queries()[i].id`, never by position
/// alone.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRef {
    /// The stable id assigned at registration.
    pub id: QueryId,
    /// Display name.
    pub name: String,
    /// What the query asks (pattern detection or a §VII extension form).
    pub spec: QuerySpec,
}

impl QueryRef {
    /// Shorthand for the base form: "is `pattern` detected?".
    pub fn pattern(id: QueryId, name: impl Into<String>, pattern: PatternId) -> Self {
        QueryRef {
            id,
            name: name.into(),
            spec: QuerySpec::Pattern { pattern },
        }
    }
}

/// The shared online release path: protection, accounting and query
/// answering for one closed window at a time.
///
/// Built by [`TrustedEngine::setup`](crate::engine::TrustedEngine::setup);
/// used directly by the batch adapters and via [`StreamingEngine`] by the
/// push path. Holds no per-stream state — window state lives in the caller
/// (open-window vectors for streaming, the input history for batch), and
/// the ledger is passed in so each service front keeps its own accounting.
#[derive(Debug, Clone)]
pub struct OnlineCore {
    /// The protection pipeline, which carries the word-parallel
    /// [`FlipPlan`](crate::protect::FlipPlan) compiled at construction
    /// and applied per release.
    pipeline: ProtectionPipeline,
    /// Cached `pipeline.budgets()`: the per-release spend, charged per
    /// closed window (sequential composition across releases).
    budgets: Vec<(PatternId, Epsilon)>,
    patterns: PatternSet,
    queries: Vec<QueryRef>,
    /// Per active query (aligned with `queries`): the compiled form —
    /// pattern references resolved to precompiled type masks, the argmax
    /// mechanism pre-built. Resolved once at compile so answering a
    /// release is branch-predictable work per query — no map lookups,
    /// string keys or panic paths on the boolean hot path.
    compiled: Vec<CompiledQuery>,
    /// The active [`QueryId`]s in answer order, shared — every release
    /// of this epoch carries the same list, so it is built once here and
    /// reference-counted into [`WindowRelease::query_ids`].
    query_ids: Arc<[QueryId]>,
    /// The control-plane epoch this core was compiled for (0 for the
    /// static setup-phase build).
    epoch: u64,
}

impl OnlineCore {
    /// The static (setup-phase) form: queries receive dense [`QueryId`]s
    /// in registration order, epoch 0.
    pub(crate) fn new(
        pipeline: ProtectionPipeline,
        patterns: PatternSet,
        queries: Vec<(String, PatternId)>,
    ) -> Result<Self, CoreError> {
        let queries = queries
            .into_iter()
            .enumerate()
            .map(|(i, (name, pattern))| QueryRef::pattern(QueryId(i as u32), name, pattern))
            .collect();
        Self::with_queries(pipeline, patterns, queries, 0)
    }

    /// The dynamic form: the control plane compiles one core per epoch,
    /// with stable query ids carried through churn.
    pub(crate) fn with_queries(
        pipeline: ProtectionPipeline,
        patterns: PatternSet,
        queries: Vec<QueryRef>,
        epoch: u64,
    ) -> Result<Self, CoreError> {
        let budgets = pipeline.budgets();
        let n_types = pipeline.flip_table().width();
        // resolve query → pattern references once, at compile: a dangling
        // reference is a registration bug and is rejected here instead of
        // panicking per release
        let compiled = queries
            .iter()
            .map(|q| CompiledQuery::compile(&q.spec, &patterns, n_types))
            .collect::<Result<Vec<_>, _>>()?;
        let query_ids: Arc<[QueryId]> = queries.iter().map(|q| q.id).collect();
        Ok(OnlineCore {
            pipeline,
            budgets,
            patterns,
            queries,
            compiled,
            query_ids,
            epoch,
        })
    }

    /// The protection pipeline in force.
    pub fn pipeline(&self) -> &ProtectionPipeline {
        &self.pipeline
    }

    /// The registered pattern set (private + target).
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// The active consumer queries; a release's `answers[i]` belongs to
    /// `queries()[i].id`.
    pub fn queries(&self) -> &[QueryRef] {
        &self.queries
    }

    /// The active [`QueryId`]s in answer order (shared, cheap to clone).
    pub fn query_ids(&self) -> Arc<[QueryId]> {
        Arc::clone(&self.query_ids)
    }

    /// The control-plane epoch this core was compiled for.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Release one closed window **in place**: apply the precompiled flip
    /// plan to the private bits of `window` and charge every protected
    /// pattern's budget to `ledger`. Zero-allocation — the caller's
    /// vector becomes the protected view.
    ///
    /// This is the **only** place protected views are produced and budget
    /// is spent — both the batch and the streaming service fronts funnel
    /// every window through here.
    pub fn release_window_in_place(
        &self,
        window: &mut IndicatorVector,
        ledger: &mut BudgetLedger<PatternId>,
        rng: &mut DpRng,
    ) -> Result<(), CoreError> {
        let width = self.pipeline.flip_table().width();
        if window.n_types() != width {
            return Err(CoreError::WidthMismatch {
                expected: width,
                got: window.n_types(),
            });
        }
        for &(id, eps) in &self.budgets {
            ledger.spend(id, eps)?;
        }
        self.pipeline.plan().apply_window(window, rng);
        Ok(())
    }

    /// Release one closed window from a borrowed input (clones it first —
    /// the batch adapters replay borrowed histories; the streaming path
    /// owns its windows and uses
    /// [`OnlineCore::release_window_in_place`] directly).
    pub fn release_window(
        &self,
        window: &IndicatorVector,
        ledger: &mut BudgetLedger<PatternId>,
        rng: &mut DpRng,
    ) -> Result<IndicatorVector, CoreError> {
        let mut out = window.clone();
        self.release_window_in_place(&mut out, ledger, rng)?;
        Ok(out)
    }

    /// Answer every registered query on a protected window, in
    /// [`QueryId`] order, updating the serving front's trailing-window
    /// `state` and drawing from `rng` for argmax selections (the
    /// deterministic draw order: after the flip plan, active argmax
    /// queries in id order). Returns the typed answers plus the
    /// `(query, ε)` charges the argmax draws incurred — the caller books
    /// them in its query ledger.
    pub fn answer_window(
        &self,
        protected: &IndicatorVector,
        state: &mut QueryStateSet,
        rng: &mut DpRng,
    ) -> (Vec<Answer>, Vec<(QueryId, Epsilon)>) {
        let mut charges = Vec::new();
        let answers = self
            .queries
            .iter()
            .zip(&self.compiled)
            .map(|(q, compiled)| {
                if let Some(eps) = compiled.charge() {
                    charges.push((q.id, eps));
                }
                compiled.answer(protected, q.id, state, Some(rng))
            })
            .collect();
        (answers, charges)
    }

    /// The population-level (merged) typed answers for one fully merged
    /// window: boolean queries keep the fold of the per-shard answers
    /// (`answers_any[i]`), extension queries evaluate on the
    /// population-union protected view (`protected_any`) with the
    /// merge-level trailing state — post-processing of already-protected
    /// bits, so nothing is charged and no randomness is drawn (argmax
    /// takes the plain, deterministic argmax).
    pub fn answer_merged(
        &self,
        answers_any: &[bool],
        protected_any: &IndicatorVector,
        state: &mut QueryStateSet,
    ) -> Vec<(QueryId, Answer)> {
        debug_assert_eq!(answers_any.len(), self.queries.len());
        self.queries
            .iter()
            .zip(&self.compiled)
            .enumerate()
            .map(|(i, (q, compiled))| {
                let answer = match compiled {
                    CompiledQuery::Bool { .. } => Answer::Bool(answers_any[i]),
                    _ => compiled.answer(protected_any, q.id, state, None),
                };
                (q.id, answer)
            })
            .collect()
    }

    /// The per-release `(query, ε)` charge schedule of this epoch's
    /// non-boolean queries (argmax draws); empty when none are active.
    pub fn query_charges(&self) -> Vec<(QueryId, Epsilon)> {
        self.queries
            .iter()
            .zip(&self.compiled)
            .filter_map(|(q, c)| c.charge().map(|eps| (q.id, eps)))
            .collect()
    }

    /// Plain-data snapshot of the compiled core's inputs (pipeline,
    /// patterns, queries, epoch). Compiled queries and the flip plan are
    /// not captured; [`OnlineCore::restore`] recompiles them — compilation
    /// is deterministic, so the restored core is equivalent bit-for-bit.
    pub fn snapshot(&self) -> OnlineCoreSnapshot {
        OnlineCoreSnapshot {
            pipeline: self.pipeline.snapshot(),
            patterns: self.patterns.clone(),
            queries: self.queries.clone(),
            epoch: self.epoch,
        }
    }

    /// Rebuild a core from an [`OnlineCore::snapshot`].
    pub fn restore(snapshot: OnlineCoreSnapshot) -> Result<Self, CoreError> {
        let pipeline = ProtectionPipeline::restore(snapshot.pipeline)?;
        Self::with_queries(
            pipeline,
            snapshot.patterns,
            snapshot.queries,
            snapshot.epoch,
        )
    }
}

/// The exact state of an [`OnlineCore`], as plain data (see
/// [`OnlineCore::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineCoreSnapshot {
    /// The protection pipeline's snapshot.
    pub pipeline: crate::protect::PipelineSnapshot,
    /// The registered pattern set.
    pub patterns: PatternSet,
    /// The active consumer queries.
    pub queries: Vec<QueryRef>,
    /// The control-plane epoch the core was compiled for.
    pub epoch: u64,
}

/// Streaming-specific knobs on top of a set-up engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingConfig {
    /// Tumbling window length (the release cadence).
    pub window_len: TimeDelta,
    /// Matching semantics for the raw detection side-channel.
    pub semantics: Semantics,
}

impl StreamingConfig {
    /// Tumbling windows of `window_len` with conjunction semantics (the
    /// indicator-level semantics the protected view is matched under).
    pub fn tumbling(window_len: TimeDelta) -> Self {
        StreamingConfig {
            window_len,
            semantics: Semantics::Conjunction,
        }
    }
}

/// One closed, protected, answered window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRelease {
    /// Sequential release index.
    pub index: usize,
    /// Start of the released window.
    pub start: Timestamp,
    /// The control-plane epoch whose compiled plan protected, charged and
    /// answered this window (0 until the first reconfiguration).
    pub epoch: u64,
    /// The raw (pre-protection) per-pattern detections, **sealed** behind
    /// the trusted boundary: no public field exposes them, and reading
    /// requires minting a [`pdp_metrics::AuditKey`] — the explicit,
    /// grep-able trusted-boundary crossing quality metering performs.
    audit: TrustedAudit,
    /// The protected indicator view — what consumers receive.
    pub protected: IndicatorVector,
    /// Per *active* query of the releasing epoch (in [`QueryId`] order):
    /// the typed answer computed on the protected view only.
    ///
    /// **Positional caution:** alignment is with the releasing epoch's
    /// [`OnlineCore::queries`] — after query churn, `answers[i]` of two
    /// different epochs can belong to different queries. Use
    /// [`WindowRelease::answer_for`] for id-keyed reads.
    pub answers: Vec<Answer>,
    /// The [`QueryId`]s `answers` is aligned with (the releasing epoch's
    /// active queries). Reference-counted: every release of one epoch
    /// shares the same list.
    pub query_ids: Arc<[QueryId]>,
}

impl WindowRelease {
    /// The sealed raw-detection view (quality metering opens it with an
    /// [`pdp_metrics::AuditKey`]).
    pub fn audit(&self) -> &TrustedAudit {
        &self.audit
    }

    /// Id-keyed answer lookup: the stable way to read a release across
    /// epoch churn. `None` when `query` was not active in this release's
    /// epoch.
    pub fn answer_for(&self, query: QueryId) -> Option<Answer> {
        let i = self.query_ids.iter().position(|&q| q == query)?;
        Some(self.answers[i].clone())
    }
}

/// The push-based trusted engine: consumes [`Event`]s, emits
/// [`WindowRelease`]s.
///
/// Construct with [`StreamingEngine::from_engine`] after completing the
/// setup phase on a [`TrustedEngine`]. The streaming engine keeps its own
/// budget ledger (it is a separate service front over the same protection
/// core).
#[derive(Debug, Clone)]
pub struct StreamingEngine {
    core: OnlineCore,
    ledger: BudgetLedger<PatternId>,
    /// Accounting of the non-boolean consumer queries' dedicated budgets
    /// (argmax draws), keyed by stable [`QueryId`].
    query_ledger: BudgetLedger<QueryId>,
    /// Trailing-window state of the stateful queries (count/argmax),
    /// keyed by stable [`QueryId`] so it survives epoch switches.
    query_state: QueryStateSet,
    detector: IncrementalDetector,
    n_types: usize,
    events_seen: usize,
    /// Reused buffer for the detector's closed windows: drained into
    /// releases on every push, so the per-event steady state performs no
    /// allocation.
    closed_scratch: Vec<ClosedWindow>,
    /// Epoch switches staged by activation window index: the front plan
    /// takes over for every release with index `>= at`. Ascending.
    pending_epochs: VecDeque<(usize, OnlineCore)>,
}

impl StreamingEngine {
    /// Go online: take the protection core of a set-up batch engine and
    /// start consuming events. Fails with [`CoreError::NotSetUp`] if
    /// `engine.setup()` has not completed.
    pub fn from_engine(engine: &TrustedEngine, config: StreamingConfig) -> Result<Self, CoreError> {
        let core = engine.online_core().ok_or(CoreError::NotSetUp)?.clone();
        Self::from_core(core, config)
    }

    /// Go online directly from a compiled [`OnlineCore`] — the form the
    /// control plane uses (epoch plans are compiled cores; there is no
    /// batch engine in the loop).
    pub fn from_core(core: OnlineCore, config: StreamingConfig) -> Result<Self, CoreError> {
        let n_types = core.pipeline().flip_table().width();
        let detector = IncrementalDetector::new(
            core.patterns().clone(),
            config.semantics,
            config.window_len,
            n_types,
        )
        .map_err(|e| CoreError::Detection(e.to_string()))?;
        Ok(StreamingEngine {
            core,
            ledger: BudgetLedger::unlimited(),
            query_ledger: BudgetLedger::unlimited(),
            query_state: QueryStateSet::new(),
            detector,
            n_types,
            events_seen: 0,
            closed_scratch: Vec::new(),
            pending_epochs: VecDeque::new(),
        })
    }

    /// Stage an epoch switch: `core` becomes the protection/answer plan
    /// for every window with release index `>= at_index`, no matter how
    /// pushes, heartbeats and gap windows interleave — all engines (and
    /// all shards of a service) given the same `(at_index, core)` switch
    /// on the same window, which is what keeps dynamic reconfiguration
    /// inside the bit-for-bit equivalence anchors.
    ///
    /// The new core must cover the same type universe and its pattern set
    /// must extend the current one (ids are stable; "removal" is
    /// deactivation in the plan, not deletion from the registry). Rejected
    /// if `at_index` precedes an already-released window or an
    /// already-staged switch.
    pub fn schedule_epoch(&mut self, at_index: usize, core: OnlineCore) -> Result<(), CoreError> {
        let swap = Arc::new(PreparedPatternSwap::prepare(
            core.patterns().clone(),
            self.n_types,
        ));
        self.schedule_epoch_prepared(at_index, core, swap)
    }

    /// Stage an epoch switch whose detector-side pattern compile was
    /// already done (once, off the hot path) by the caller. The sharded
    /// service prepares a single [`PreparedPatternSwap`] on the service
    /// thread and shares it across all shard engines behind an [`Arc`], so
    /// activation at the scheduled window is a plan swap, not a per-shard
    /// stop-the-world recompile.
    ///
    /// `swap` must carry exactly `core.patterns()` compiled for this
    /// engine's type universe; same validation as
    /// [`StreamingEngine::schedule_epoch`] otherwise.
    pub fn schedule_epoch_prepared(
        &mut self,
        at_index: usize,
        core: OnlineCore,
        swap: Arc<PreparedPatternSwap>,
    ) -> Result<(), CoreError> {
        let width = core.pipeline().flip_table().width();
        if width != self.n_types {
            return Err(CoreError::WidthMismatch {
                expected: self.n_types,
                got: width,
            });
        }
        let matches = swap.patterns().len() == core.patterns().len()
            && core
                .patterns()
                .iter()
                .all(|(id, p)| swap.patterns().get(id) == Some(p));
        if !matches {
            return Err(CoreError::Detection(
                "prepared swap does not match the scheduled core's patterns".into(),
            ));
        }
        self.detector
            .schedule_prepared_update(at_index, swap)
            .map_err(|e| CoreError::Detection(e.to_string()))?;
        self.pending_epochs.push_back((at_index, core));
        Ok(())
    }

    /// The epoch of the core currently in force (staged switches excluded).
    pub fn epoch(&self) -> u64 {
        self.core.epoch()
    }

    /// Push one event (events must arrive in temporal order). Returns the
    /// releases of every window that closed before it — empty gap windows
    /// included, so downstream consumers see the full timeline and absent
    /// patterns can still flip into present ones.
    pub fn push(
        &mut self,
        event: &Event,
        rng: &mut DpRng,
    ) -> Result<Vec<WindowRelease>, CoreError> {
        let mut out = Vec::new();
        self.push_into(event, rng, &mut out)?;
        Ok(out)
    }

    /// Drain-style [`StreamingEngine::push`]: appends the releases to a
    /// caller-reused buffer and returns how many were appended. The
    /// hot-path form — an event that closes no window allocates nothing.
    pub fn push_into(
        &mut self,
        event: &Event,
        rng: &mut DpRng,
        out: &mut Vec<WindowRelease>,
    ) -> Result<usize, CoreError> {
        let mut rows = std::mem::take(&mut self.closed_scratch);
        let pushed = self
            .detector
            .push_into(event, &mut rows)
            .map_err(|e| CoreError::Detection(e.to_string()));
        let released = match pushed {
            Ok(_) => self.release_rows(&mut rows, rng, out),
            Err(e) => Err(e),
        };
        rows.clear();
        self.closed_scratch = rows;
        if released.is_ok() {
            self.events_seen += 1;
        }
        released
    }

    /// Advance the watermark to `ts` without an event (heartbeat): closes
    /// and releases every window ending at or before `ts`'s window start.
    /// A long-running service calls this on quiet streams so consumers
    /// keep receiving (protected, possibly flipped-present) windows.
    pub fn advance_watermark(
        &mut self,
        ts: Timestamp,
        rng: &mut DpRng,
    ) -> Result<Vec<WindowRelease>, CoreError> {
        let mut out = Vec::new();
        self.advance_watermark_into(ts, rng, &mut out)?;
        Ok(out)
    }

    /// Drain-style [`StreamingEngine::advance_watermark`]; appends to
    /// `out` and returns the number of releases.
    pub fn advance_watermark_into(
        &mut self,
        ts: Timestamp,
        rng: &mut DpRng,
        out: &mut Vec<WindowRelease>,
    ) -> Result<usize, CoreError> {
        let mut rows = std::mem::take(&mut self.closed_scratch);
        let advanced = self
            .detector
            .advance_to_into(ts, &mut rows)
            .map_err(|e| CoreError::Detection(e.to_string()));
        let released = match advanced {
            Ok(_) => self.release_rows(&mut rows, rng, out),
            Err(e) => Err(e),
        };
        rows.clear();
        self.closed_scratch = rows;
        released
    }

    /// Flush the open window (end of stream). `None` if no window is open.
    pub fn finish(&mut self, rng: &mut DpRng) -> Result<Option<WindowRelease>, CoreError> {
        match self.detector.finish() {
            Some(row) => self.release_one(row, rng).map(Some),
            None => Ok(None),
        }
    }

    fn release_rows(
        &mut self,
        rows: &mut Vec<ClosedWindow>,
        rng: &mut DpRng,
        out: &mut Vec<WindowRelease>,
    ) -> Result<usize, CoreError> {
        let n = rows.len();
        for row in rows.drain(..) {
            let release = self.release_one(row, rng)?;
            out.push(release);
        }
        Ok(n)
    }

    /// Turn one closed window into a release without copying: the row's
    /// packed presence vector is perturbed in place and becomes the
    /// protected view.
    fn release_one(
        &mut self,
        row: ClosedWindow,
        rng: &mut DpRng,
    ) -> Result<WindowRelease, CoreError> {
        // staged epoch switches due at this window take over before it is
        // protected — mirroring the detector, which swapped its pattern
        // set at the same index when it closed the row
        while self
            .pending_epochs
            .front()
            .is_some_and(|(at, _)| *at <= row.index)
        {
            self.core = self
                .pending_epochs
                .pop_front()
                .expect("checked non-empty")
                .1;
        }
        let mut protected = row.presence;
        self.core
            .release_window_in_place(&mut protected, &mut self.ledger, rng)?;
        let (answers, charges) = self
            .core
            .answer_window(&protected, &mut self.query_state, rng);
        for (query, eps) in charges {
            self.query_ledger
                .spend(query, eps)
                .expect("the engine query ledger is unlimited");
        }
        Ok(WindowRelease {
            index: row.index,
            start: row.start,
            epoch: self.core.epoch(),
            audit: TrustedAudit::seal(row.detections),
            protected,
            answers,
            query_ids: self.core.query_ids(),
        })
    }

    /// The shared protection core (pipeline, patterns, queries).
    pub fn core(&self) -> &OnlineCore {
        &self.core
    }

    /// Number of windows released so far.
    pub fn releases(&self) -> usize {
        self.detector.emitted()
    }

    /// Number of events consumed so far.
    pub fn events_seen(&self) -> usize {
        self.events_seen
    }

    /// Budget spent so far on one private pattern (sequential composition
    /// across this front's releases).
    pub fn budget_spent(&self, id: PatternId) -> Epsilon {
        self.ledger.spent(&id)
    }

    /// Dedicated budget spent so far by one non-boolean consumer query
    /// (argmax draws; zero for boolean/count/categorical queries, which
    /// are pure post-processing).
    pub fn query_budget_spent(&self, query: QueryId) -> Epsilon {
        self.query_ledger.spent(&query)
    }

    /// The active queries as `(stable id, name)` pairs, in the order of
    /// [`WindowRelease::answers`]. Names are ambiguous after revocation
    /// and re-registration; the id is the stable consumer handle.
    pub fn query_names(&self) -> Vec<(QueryId, &str)> {
        self.core
            .queries()
            .iter()
            .map(|q| (q.id, q.name.as_str()))
            .collect()
    }

    /// The stable [`QueryId`] a release's `answers[i]` corresponds to.
    pub fn query_id(&self, i: usize) -> Option<QueryId> {
        self.core.queries().get(i).map(|q| q.id)
    }

    /// Width of the event-type universe.
    pub fn n_types(&self) -> usize {
        self.n_types
    }

    /// Plain-data snapshot of the whole engine: the active core, both
    /// ledgers, the trailing query state, the detector (open window
    /// included) and every staged epoch switch. Taken between pushes,
    /// the snapshot plus the same subsequent inputs and RNG positions
    /// reproduces the original's releases bit-for-bit.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            core: self.core.snapshot(),
            ledger: self.ledger.snapshot(),
            query_ledger: self.query_ledger.snapshot(),
            query_state: self.query_state.snapshot(),
            detector: self.detector.snapshot(),
            events_seen: self.events_seen,
            pending_epochs: self
                .pending_epochs
                .iter()
                .map(|(at, core)| (*at, core.snapshot()))
                .collect(),
        }
    }

    /// Rebuild an engine from a [`StreamingEngine::snapshot`]. Every
    /// compiled artifact (flip plan, query masks, detector NFAs) is
    /// recompiled from the snapshot's plain data; the detector restores
    /// its own staged swaps, and the engine-level pending cores are
    /// reattached in lockstep with them.
    pub fn restore(snapshot: EngineSnapshot) -> Result<Self, CoreError> {
        let core = OnlineCore::restore(snapshot.core)?;
        let n_types = core.pipeline().flip_table().width();
        let detector = IncrementalDetector::restore(snapshot.detector)
            .map_err(|e| CoreError::Detection(e.to_string()))?;
        let mut pending_epochs = VecDeque::new();
        for (at, pending) in snapshot.pending_epochs {
            pending_epochs.push_back((at, OnlineCore::restore(pending)?));
        }
        Ok(StreamingEngine {
            core,
            ledger: BudgetLedger::restore(snapshot.ledger),
            query_ledger: BudgetLedger::restore(snapshot.query_ledger),
            query_state: QueryStateSet::restore(snapshot.query_state),
            detector,
            n_types,
            events_seen: snapshot.events_seen,
            closed_scratch: Vec::new(),
            pending_epochs,
        })
    }
}

/// The exact state of a [`StreamingEngine`], as plain data (see
/// [`StreamingEngine::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// The active protection core.
    pub core: OnlineCoreSnapshot,
    /// Per-pattern spend of this front.
    pub ledger: pdp_dp::BudgetLedgerSnapshot<PatternId>,
    /// Per-query (argmax) spend of this front.
    pub query_ledger: pdp_dp::BudgetLedgerSnapshot<QueryId>,
    /// Trailing-window state of the stateful queries.
    pub query_state: Vec<(QueryId, Vec<u64>)>,
    /// The incremental detector (open window, emit frontier, staged
    /// swaps).
    pub detector: pdp_cep::DetectorSnapshot,
    /// Events consumed so far.
    pub events_seen: usize,
    /// Staged epoch switches as `(activation index, core)`, ascending —
    /// mirrors the detector's staged swaps one for one.
    pub pending_epochs: Vec<(usize, OnlineCoreSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{PpmKind, TrustedEngineConfig};
    use pdp_cep::Pattern;
    use pdp_metrics::Alpha;
    use pdp_metrics::AuditKey;
    use pdp_stream::{EventType, WindowedIndicators};

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    fn e(ty: u32, ms: i64) -> Event {
        Event::new(t(ty), Timestamp::from_millis(ms))
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn set_up_engine(ppm: PpmKind) -> TrustedEngine {
        let mut engine = TrustedEngine::new(TrustedEngineConfig {
            n_types: 4,
            alpha: Alpha::HALF,
            ppm,
        });
        engine.register_private_pattern(Pattern::seq("priv", vec![t(0), t(1)]).unwrap());
        engine.register_target_query("t2?", Pattern::single("t2", t(2)));
        engine.setup().unwrap();
        engine
    }

    fn streaming(ppm: PpmKind) -> StreamingEngine {
        StreamingEngine::from_engine(
            &set_up_engine(ppm),
            StreamingConfig::tumbling(TimeDelta::from_millis(10)),
        )
        .unwrap()
    }

    #[test]
    fn requires_set_up_engine() {
        let engine = TrustedEngine::new(TrustedEngineConfig {
            n_types: 4,
            alpha: Alpha::HALF,
            ppm: PpmKind::PassThrough,
        });
        assert!(matches!(
            StreamingEngine::from_engine(
                &engine,
                StreamingConfig::tumbling(TimeDelta::from_millis(10))
            ),
            Err(CoreError::NotSetUp)
        ));
    }

    #[test]
    fn invalid_window_length_rejected() {
        let engine = set_up_engine(PpmKind::PassThrough);
        assert!(matches!(
            StreamingEngine::from_engine(&engine, StreamingConfig::tumbling(TimeDelta::ZERO)),
            Err(CoreError::Detection(_))
        ));
    }

    #[test]
    fn pass_through_releases_answer_truth() {
        let mut s = streaming(PpmKind::PassThrough);
        let mut rng = DpRng::seed_from(1);
        assert!(s.push(&e(2, 1), &mut rng).unwrap().is_empty());
        assert!(s.push(&e(0, 5), &mut rng).unwrap().is_empty());
        // t=25 closes window 0 and the empty window 1
        let releases = s.push(&e(2, 25), &mut rng).unwrap();
        assert_eq!(releases.len(), 2);
        assert_eq!(releases[0].index, 0);
        assert_eq!(releases[0].start, Timestamp::ZERO);
        assert_eq!(releases[0].answers, vec![Answer::Bool(true)]); // t2 present
        assert!(releases[0].protected.get(t(0)));
        assert_eq!(releases[1].answers, vec![Answer::Bool(false)]); // gap window empty
        assert_eq!(releases[1].protected.count_present(), 0);
        let last = s.finish(&mut rng).unwrap().unwrap();
        assert_eq!(last.index, 2);
        assert_eq!(last.answers, vec![Answer::Bool(true)]);
        assert_eq!(last.answer_for(QueryId(0)), Some(Answer::Bool(true)));
        assert_eq!(last.answer_for(QueryId(7)), None);
        assert_eq!(s.releases(), 3);
        assert_eq!(s.events_seen(), 3);
        assert!(s.finish(&mut rng).unwrap().is_none());
    }

    #[test]
    fn out_of_universe_query_answers_false_every_window() {
        // a registered query whose pattern lies outside the type universe
        // can never be satisfied; the precompiled mask must preserve the
        // always-false answer (not collapse to a vacuous always-true one)
        let mut engine = TrustedEngine::new(TrustedEngineConfig {
            n_types: 4,
            alpha: Alpha::HALF,
            ppm: PpmKind::PassThrough,
        });
        engine.register_target_query("ghost?", Pattern::single("ghost", t(9)));
        engine.setup().unwrap();
        let mut s = StreamingEngine::from_engine(
            &engine,
            StreamingConfig::tumbling(TimeDelta::from_millis(10)),
        )
        .unwrap();
        let mut rng = DpRng::seed_from(1);
        s.push(&e(0, 1), &mut rng).unwrap();
        let release = s.finish(&mut rng).unwrap().unwrap();
        assert_eq!(release.answers, vec![Answer::Bool(false)]);
    }

    #[test]
    fn sealed_audit_carries_the_incremental_detections() {
        let engine = set_up_engine(PpmKind::PassThrough);
        let mut s = StreamingEngine::from_engine(
            &engine,
            StreamingConfig {
                window_len: TimeDelta::from_millis(10),
                semantics: Semantics::Ordered,
            },
        )
        .unwrap();
        let mut rng = DpRng::seed_from(3);
        s.push(&e(0, 1), &mut rng).unwrap();
        s.push(&e(1, 4), &mut rng).unwrap();
        let release = s.finish(&mut rng).unwrap().unwrap();
        // pattern 0 = SEQ(t0, t1) observed in order; pattern 1 = t2 absent —
        // readable only through the explicit trusted-boundary key
        let key = AuditKey::trusted_boundary();
        assert_eq!(release.audit().open(&key), &[true, false]);
        assert_eq!(release.audit().len(), 2);
    }

    #[test]
    fn budget_accrues_per_release() {
        let mut s = streaming(PpmKind::Uniform { eps: eps(0.5) });
        let private = s.core().patterns().iter().next().unwrap().0;
        let mut rng = DpRng::seed_from(7);
        s.push(&e(0, 1), &mut rng).unwrap();
        s.push(&e(1, 35), &mut rng).unwrap(); // releases windows 0..=2
        s.finish(&mut rng).unwrap(); // releases window 3
        assert_eq!(s.releases(), 4);
        assert!((s.budget_spent(private).value() - 4.0 * 0.5).abs() < 1e-12);
    }

    #[test]
    fn watermark_releases_quiet_windows() {
        let mut s = streaming(PpmKind::Uniform { eps: eps(1.0) });
        let mut rng = DpRng::seed_from(9);
        // pin the logical stream start
        assert!(s
            .advance_watermark(Timestamp::ZERO, &mut rng)
            .unwrap()
            .is_empty());
        // a quiet stream still releases protected windows on heartbeats
        let releases = s
            .advance_watermark(Timestamp::from_millis(30), &mut rng)
            .unwrap();
        assert_eq!(releases.len(), 3);
        // uncorrelated types stay absent; private bits may flip in
        for r in &releases {
            assert!(!r.protected.get(t(2)));
            assert!(!r.protected.get(t(3)));
        }
        // watermark regression is rejected
        assert!(s
            .advance_watermark(Timestamp::from_millis(5), &mut rng)
            .is_err());
    }

    #[test]
    fn scheduled_epoch_switches_on_its_window() {
        let mut s = streaming(PpmKind::PassThrough);
        // a grown epoch-1 core: same patterns plus one more target query
        let mut engine_b = TrustedEngine::new(TrustedEngineConfig {
            n_types: 4,
            alpha: Alpha::HALF,
            ppm: PpmKind::PassThrough,
        });
        engine_b.register_private_pattern(Pattern::seq("priv", vec![t(0), t(1)]).unwrap());
        engine_b.register_target_query("t2?", Pattern::single("t2", t(2)));
        engine_b.register_target_query("t3?", Pattern::single("t3", t(3)));
        engine_b.setup().unwrap();
        let base = engine_b.online_core().unwrap();
        let core_b = OnlineCore::with_queries(
            base.pipeline().clone(),
            base.patterns().clone(),
            base.queries().to_vec(),
            1,
        )
        .unwrap();
        s.schedule_epoch(1, core_b).unwrap();
        assert_eq!(s.epoch(), 0, "switch is staged, not applied");

        let mut rng = DpRng::seed_from(5);
        let mut releases = s.push(&e(2, 1), &mut rng).unwrap();
        releases.extend(s.push(&e(3, 15), &mut rng).unwrap());
        releases.extend(
            s.advance_watermark(Timestamp::from_millis(30), &mut rng)
                .unwrap(),
        );
        assert_eq!(releases.len(), 3);
        // window 0 still answers under the old plan; 1 and 2 under the new
        assert_eq!(releases[0].epoch, 0);
        assert_eq!(releases[0].answers, vec![Answer::Bool(true)]);
        assert_eq!(releases[1].epoch, 1);
        assert_eq!(
            releases[1].answers,
            vec![Answer::Bool(false), Answer::Bool(true)]
        );
        assert_eq!(releases[2].epoch, 1);
        assert_eq!(
            releases[2].answers,
            vec![Answer::Bool(false), Answer::Bool(false)]
        );
        assert_eq!(s.epoch(), 1);
        assert_eq!(
            s.query_names(),
            vec![(QueryId(0), "t2?"), (QueryId(1), "t3?")]
        );
        assert_eq!(s.query_id(1), Some(QueryId(1)));
    }

    #[test]
    fn scheduled_epoch_validation() {
        let mut s = streaming(PpmKind::PassThrough);
        let mut rng = DpRng::seed_from(1);
        s.push(&e(0, 1), &mut rng).unwrap();
        s.push(&e(0, 25), &mut rng).unwrap(); // windows 0, 1 released
        let core = s.core().clone();
        // behind the release frontier
        assert!(s.schedule_epoch(1, core.clone()).is_err());
        assert!(s.schedule_epoch(2, core.clone()).is_ok());
        // staged switches must not regress either
        assert!(s.schedule_epoch(1, core).is_err());
        // a core over a different type universe is rejected
        let mut narrow = TrustedEngine::new(TrustedEngineConfig {
            n_types: 2,
            alpha: Alpha::HALF,
            ppm: PpmKind::PassThrough,
        });
        narrow.register_target_query("t0?", Pattern::single("t0", t(0)));
        narrow.setup().unwrap();
        let narrow_core = narrow.online_core().unwrap().clone();
        assert!(matches!(
            s.schedule_epoch(5, narrow_core),
            Err(CoreError::WidthMismatch {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn engine_snapshot_round_trip_mid_stream() {
        let mut s = streaming(PpmKind::Uniform { eps: eps(1.0) });
        let mut rng = DpRng::seed_from(13);
        s.push(&e(0, 1), &mut rng).unwrap();
        s.push(&e(2, 15), &mut rng).unwrap(); // window 0 released, 1 open
        let snap = s.snapshot();
        let mut restored = StreamingEngine::restore(snap.clone()).unwrap();
        assert_eq!(restored.snapshot(), snap, "snapshot is a fixed point");
        // continuing from the same RNG position, both engines release
        // bit-for-bit identically
        let mut rng2 = DpRng::from_state(rng.state());
        let a = s.push(&e(1, 27), &mut rng).unwrap();
        let b = restored.push(&e(1, 27), &mut rng2).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            s.finish(&mut rng).unwrap(),
            restored.finish(&mut rng2).unwrap()
        );
        let private = s.core().patterns().iter().next().unwrap().0;
        assert_eq!(
            s.budget_spent(private).value(),
            restored.budget_spent(private).value()
        );
    }

    #[test]
    fn engine_snapshot_preserves_staged_epochs() {
        let mut s = streaming(PpmKind::PassThrough);
        let mut rng = DpRng::seed_from(5);
        s.push(&e(2, 1), &mut rng).unwrap();
        let core_b = OnlineCore::with_queries(
            s.core().pipeline().clone(),
            s.core().patterns().clone(),
            s.core().queries().to_vec(),
            1,
        )
        .unwrap();
        s.schedule_epoch(1, core_b).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.pending_epochs.len(), 1);
        let mut restored = StreamingEngine::restore(snap).unwrap();
        let mut rng2 = DpRng::from_state(rng.state());
        // the staged switch lands on window 1 in both engines
        let a = s
            .advance_watermark(Timestamp::from_millis(30), &mut rng)
            .unwrap();
        let b = restored
            .advance_watermark(Timestamp::from_millis(30), &mut rng2)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a[1].epoch, 1);
        assert_eq!(restored.epoch(), 1);
    }

    #[test]
    fn streaming_matches_batch_protected_view_bit_for_bit() {
        // the equivalence the refactor promises: same windows, same seed —
        // identical protected output and identical ledger spend
        let windows = WindowedIndicators::new(vec![
            IndicatorVector::from_present([t(0), t(2)], 4),
            IndicatorVector::empty(4),
            IndicatorVector::from_present([t(1)], 4),
            IndicatorVector::from_present([t(0), t(1), t(3)], 4),
        ]);
        let len = TimeDelta::from_millis(10);

        let mut batch_engine = set_up_engine(PpmKind::Uniform { eps: eps(1.2) });
        let mut batch_rng = DpRng::seed_from(42);
        let batch_view = batch_engine
            .protected_view(&windows, &mut batch_rng)
            .unwrap();

        let engine = set_up_engine(PpmKind::Uniform { eps: eps(1.2) });
        let mut s = StreamingEngine::from_engine(&engine, StreamingConfig::tumbling(len)).unwrap();
        let mut stream_rng = DpRng::seed_from(42);
        let mut released = Vec::new();
        s.advance_watermark(Timestamp::ZERO, &mut stream_rng)
            .unwrap();
        for ev in windows.to_events(len).iter() {
            released.extend(s.push(ev, &mut stream_rng).unwrap());
        }
        released.extend(
            s.advance_watermark(
                Timestamp::from_millis(windows.len() as i64 * len.millis()),
                &mut stream_rng,
            )
            .unwrap(),
        );

        assert_eq!(released.len(), batch_view.len());
        for (i, r) in released.iter().enumerate() {
            assert_eq!(&r.protected, batch_view.window(i), "window {i}");
        }
        let private = engine.private_patterns()[0];
        assert_eq!(
            s.budget_spent(private).value(),
            batch_engine.budget_spent(private).value()
        );
    }
}
