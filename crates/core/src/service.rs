//! The sharded multi-tenant service layer.
//!
//! The paper's model (§III-A, Fig. 1) is one trusted engine serving *many*
//! data subjects and consumers over an unbounded stream. A production-scale
//! deployment cannot run that as a single single-threaded
//! [`StreamingEngine`]: ingestion arrives in batches, events arrive late,
//! and the event volume of millions of subjects has to be spread over
//! independent partitions. [`ShardedService`] is that deployment shape:
//!
//! * **setup phase** ([`ServiceBuilder`]): data subjects register under a
//!   [`SubjectId`] and declare their private patterns; data consumers
//!   register named target queries. One protection pipeline is built over
//!   the union of all registrations, exactly as in
//!   [`TrustedEngine::setup`](crate::engine::TrustedEngine::setup);
//! * **sharding**: every subject is hash-assigned to one of `n_shards`
//!   partitions ([`ShardedService::shard_for`]), so a subject's whole
//!   stream — and therefore every window of it — is always processed by
//!   the same shard. Each shard runs its own [`OnlineCore`]-backed
//!   [`StreamingEngine`] with an independent [`DpRng`];
//! * **dense subject routing** ([`RouteTable`]): the control plane
//!   interns every registered subject into a dense `u32` index at
//!   registration time (append-only — the index is stable across
//!   retire/re-register, checkpoints carry it explicitly, and WAL replay
//!   re-derives it from command order, so recovery and the live service
//!   agree bit-for-bit). The per-event route probe is an indexed table
//!   lookup — `direct[subject.0] → shard`, with a hashed overflow tier
//!   for sparse ids above [`RouteTable::DIRECT_CAP`] — instead of a
//!   per-event `HashMap` probe, and the per-subject budget ledgers are a
//!   dense `Vec` keyed by the intern index on the settle path. Unknown
//!   or retired subjects hit the table's sentinel and reject the whole
//!   batch atomically ([`CoreError::UnknownSubject`]) before any event
//!   moves, exactly as the hash probe did. Checkpoint images written
//!   before dense interning (format v1) are rejected with a typed
//!   version error — re-checkpoint from a live service to migrate (the
//!   wire format stays subject-keyed and sorted, so images mean the
//!   same thing; only the version byte moved);
//! * **pipelined shard workers (shard-resident state)**: a multi-shard
//!   service spawns one persistent worker thread per shard (plain
//!   `std::thread` + channels — no external dependencies). Each worker
//!   permanently owns its shard's state — [`ReorderBuffer`],
//!   [`StreamingEngine`] and [`DpRng`] — behind an `Arc<Mutex<…>>` the
//!   service thread only locks at explicit **sync points**
//!   ([`ShardedService::finish`], [`ShardedService::begin_epoch`],
//!   checkpoint-style reads), when all workers are idle and the locks are
//!   uncontended. Nothing is moved over a channel per job;
//! * **double-buffered bounded hand-off**:
//!   [`ShardedService::push_batch`] partitions a batch into per-shard
//!   sub-batch buffers that are swapped into a **bounded** SPSC job queue
//!   the moment they fill, so partitioning of batch *k+1* overlaps shard
//!   work on batch *k*. Backpressure is the queue filling up (the send
//!   blocks); memory never grows unboundedly. Emptied buffers ride the
//!   reply channel back and are reused — the steady state recycles
//!   allocations instead of making them;
//! * **deferred fold-back (one-call lag)**: a `push_batch` call settles
//!   and delivers the releases of the *previous* call's round, then
//!   submits its own and returns while the shards are still working.
//!   Replies fold back **in shard order** via per-shard FIFO reply
//!   channels, so accounting, merging and output are deterministic
//!   regardless of thread scheduling. Every other operation
//!   (`advance_watermark`, `finish`, `begin_epoch`, stats reads) is a
//!   draining sync point: it folds all in-flight work first, so its
//!   output includes everything submitted before it. Each shard's RNG
//!   lives with its engine, so an N-shard parallel run is bit-for-bit
//!   identical to the inline one — and a 1-shard service stays
//!   bit-for-bit a plain [`StreamingEngine`];
//! * **batched out-of-order ingestion** ([`ShardedService::push_batch`]):
//!   events are keyed by subject, routed to their shard's
//!   [`ReorderBuffer`] (ownership moves all the way in — no per-event
//!   clone), and only enter the shard engine once the shard watermark
//!   passes them; events later than the bounded delay are counted and
//!   dropped. The service thread mirrors every shard buffer's clock at
//!   routing time, so the **global low watermark** (the minimum across
//!   shard buffers) is known without a barrier and drives
//!   [`StreamingEngine::advance_watermark`] on every shard in the same
//!   round, keeping quiet partitions releasing (protected, possibly
//!   flipped-present) windows on one aligned window timeline;
//! * **merged releases**: shard releases fold into per-window-index
//!   accumulators as they arrive; once every shard has released a given
//!   index the row is emitted as a [`MergedRelease`] — boolean queries
//!   fold as the disjunction over shards (with per-query positive-shard
//!   counts kept for aggregate consumers), extension queries evaluate
//!   typed on the population-union protected view. (Releases are never
//!   cloned into a merge queue; the accumulator only folds their answer
//!   bits.)
//! * **consumer delivery** ([`ReleaseSink`]): `push_batch_into` /
//!   `advance_watermark_into` / `finish_into` push every release and
//!   every subscribed id-keyed [`QueryAnswer`] record into a
//!   consumer-supplied sink; `push_batch`/[`BatchOutput`] is the same
//!   path collected through the default [`VecSink`].
//! * **per-subject accounting**: each shard release charges every subject
//!   assigned to that shard for their own registered patterns in a
//!   per-subject [`BudgetLedger`](pdp_dp::BudgetLedger) — the
//!   pattern-level ε-DP guarantee
//!   (Thm. 1) is per subject and must hold regardless of how the stream is
//!   partitioned.
//!
//! * **control plane / data plane split** ([`ControlPlane`]): the static
//!   setup phase is only the *initial* epoch. At runtime, tenants join and
//!   leave ([`ShardedService::register_subject`] /
//!   [`ShardedService::retire_subject`]), patterns and queries churn
//!   ([`ShardedService::register_private_pattern`] /
//!   [`ShardedService::revoke_private_pattern`] /
//!   [`ShardedService::add_consumer_query`] /
//!   [`ShardedService::remove_consumer_query`]), and history arrives
//!   ([`ShardedService::provide_history`]). Staged commands take effect
//!   only at [`ShardedService::begin_epoch`], which compiles them into an
//!   immutable [`EpochPlan`] and fans it out to every shard with one
//!   **activation window index** — the first window no shard has released
//!   yet (the frontier the global low watermark drives). Every shard —
//!   and any independent engine handed the same `(activation, plan)` —
//!   switches on the same window, so the equivalence anchors below extend
//!   to the dynamic setting. The detector-side pattern compile happens
//!   **once**, on the service thread
//!   ([`PreparedPatternSwap`]), and is
//!   shared across all shards behind an `Arc`: activation at the
//!   scheduled window is an atomic plan swap, not a per-shard
//!   stop-the-world recompile. See [`crate::control`] for the
//!   determinism contract of command schedules.
//!
//! * **crash consistency** ([`crate::durability`]): the service can
//!   journal every accepted input to a write-ahead log and image its full
//!   state into a [`ServiceCheckpoint`]. The consistency contract:
//!
//!   - **checkpoint-safe sync points.** [`ShardedService::checkpoint_into`]
//!     is a draining sync point: it folds every in-flight round and
//!     flushes the outbox into the caller's sink *before* imaging, so a
//!     checkpoint never contains an in-flight round, an undelivered
//!     release, or a sealed audit record. Any state a checkpoint captures
//!     has already been delivered and charged.
//!   - **write-ahead commands, write-behind effects.** Control-plane
//!     commands are logged *before* they are staged (their replay
//!     re-fails deterministically if the plane rejected them); batches
//!     are logged after atomic subject validation but before any event
//!     moves; watermarks before their round is submitted; `BeginEpoch`
//!     only after the whole transition succeeded; `Finish` when the
//!     service seals. An operation interrupted by a crash before its
//!     record hit the log simply never happened — recovery is always a
//!     clean prefix of the accepted history.
//!   - **recovery = checkpoint + replay.** [`ShardedService::recover_into`]
//!     restores the checkpoint image (including every shard's RNG
//!     position, resumed mid-stream) and replays the WAL tail from
//!     [`ServiceCheckpoint::wal_offset`] through the normal public entry
//!     points. Because the service is deterministic in its inputs under
//!     seeded RNGs, the recovered service produces **bit-for-bit** the
//!     same deliveries, ledger spends and low watermark as one that never
//!     crashed (see `tests/crash_recovery.rs`).
//!
//! Correctness is anchored by equivalence, not by re-proof: a 1-shard
//! service reproduces [`StreamingEngine`] bit-for-bit under a seeded
//! [`DpRng`], and an N-shard service over a partitioned stream matches N
//! independent engines (see `tests/sharded_equivalence.rs`) — including
//! under a non-empty command schedule.
//!
//! [`ReorderBuffer`]: pdp_stream::ReorderBuffer

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use pdp_cep::{Pattern, PatternId, PreparedPatternSwap, QueryId};
use pdp_dp::{DpRng, EpochLedger, Epsilon};
use pdp_metrics::Alpha;
use pdp_stream::{Event, IndicatorVector, ReorderBuffer, TimeDelta, Timestamp, WindowedIndicators};

use crate::answer::{Answer, Query, QueryStateSet};
use crate::control::{Command, CommandOutcome, ControlPlane, ControlPlaneConfig, EpochPlan};
use crate::durability::{
    read_checkpoint, read_wal_from, replay_into, MergeRowSnapshot, MergeSnapshot,
    ServiceCheckpoint, ShardCheckpoint, ShardMetaSnapshot, WalRecord, WalWriter,
};
use crate::engine::PpmKind;
use crate::error::CoreError;
use crate::sink::{QueryAnswer, ReleaseSink, VecSink};
use crate::streaming::{OnlineCore, StreamingConfig, StreamingEngine, WindowRelease};
use crate::supervision::{
    DueFault, FaultInjector, FaultPlan, HealAction, HealEvent, HealthReport, ShardHealth,
    SupervisorConfig,
};

/// Identifies one data subject (tenant) of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubjectId(pub u64);

impl std::fmt::Display for SubjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "subject#{}", self.0)
    }
}

/// An event keyed by the data subject that emitted it — the unit of
/// ingestion for the sharded service.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedEvent {
    /// The emitting data subject; determines the shard.
    pub subject: SubjectId,
    /// The event itself.
    pub event: Event,
}

impl KeyedEvent {
    /// Convenience constructor.
    pub fn new(subject: SubjectId, event: Event) -> Self {
        KeyedEvent { subject, event }
    }
}

/// Construction parameters of a [`ShardedService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of partitions (≥ 1).
    pub n_shards: usize,
    /// Size of the event-type universe.
    pub n_types: usize,
    /// The consumers' quality weight (Eq. 3).
    pub alpha: Alpha,
    /// The pattern-level PPM every shard applies.
    pub ppm: PpmKind,
    /// Window length and detection semantics of every shard engine.
    pub streaming: StreamingConfig,
    /// Bounded lateness tolerated by the per-shard reorder buffers.
    pub max_delay: TimeDelta,
    /// Base seed; shard `i` draws from [`ShardedService::shard_seed`]`(seed, i)`.
    pub seed: u64,
    /// Capacity of the sliding released-window history the control plane
    /// keeps for the online adaptive PPM (0 disables it; explicitly
    /// granted history is never truncated). See
    /// [`ControlPlane::observe_release`].
    pub history_window: usize,
}

/// One shard's release, tagged with its partition.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRelease {
    /// The partition that released the window.
    pub shard: usize,
    /// The protected release itself.
    pub release: WindowRelease,
}

/// One window index merged across every shard: the population-level view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedRelease {
    /// Window index (shared by all shards — they run one aligned timeline).
    pub index: usize,
    /// Start of the window.
    pub start: Timestamp,
    /// The control-plane epoch that released this window (identical on
    /// every shard — epoch switches land on one window index).
    pub epoch: u64,
    /// **Positional — handle with care.** Per *active* query of the
    /// releasing epoch (aligned with that epoch's
    /// [`OnlineCore::queries`](crate::streaming::OnlineCore::queries)):
    /// the boolean coercion ([`Answer::truthy`]) of each shard's answer,
    /// OR-ed over shards. Across an epoch transition that removes a
    /// query, index `i` of two releases can belong to **different
    /// queries** — positional reads silently misattribute answers after
    /// churn. Prefer [`MergedRelease::answer_for`], which is keyed by
    /// stable [`QueryId`].
    pub answers_any: Vec<bool>,
    /// **Positional — same caution as [`MergedRelease::answers_any`].**
    /// Per query: how many shards answered truthily (the aggregate
    /// consumers' counting view).
    pub positive_shards: Vec<usize>,
    /// The population-level protected indicator view: the per-type
    /// disjunction of every shard's protected release of this window.
    /// Also what feeds the control plane's sliding history.
    pub protected_any: IndicatorVector,
    /// The typed population-level answers, keyed by stable [`QueryId`]
    /// (ascending): boolean queries fold the per-shard answers, extension
    /// queries evaluate on [`MergedRelease::protected_any`].
    pub(crate) typed: Vec<(QueryId, Answer)>,
}

impl MergedRelease {
    /// Id-keyed answer lookup — the stable way to read releases across
    /// epoch churn (a removed query returns `None` instead of shifting
    /// its neighbours' positions). This is the consumer-facing read; the
    /// positional fields exist for aggregate tooling that tracks the
    /// epoch itself.
    pub fn answer_for(&self, query: QueryId) -> Option<Answer> {
        let i = self.typed.iter().position(|(q, _)| *q == query)?;
        Some(self.typed[i].1.clone())
    }

    /// Every typed answer of this window as `(stable id, answer)` pairs,
    /// in ascending [`QueryId`] order.
    pub fn typed_answers(&self) -> &[(QueryId, Answer)] {
        &self.typed
    }
}

/// What one ingestion call produced (the legacy return-value delivery
/// style). Reimplemented on top of [`VecSink`]: `push_batch` collects
/// into a sink subscribed to everything and hands its vectors back, so
/// the sink path and this struct are one code path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOutput {
    /// Every window released by any shard. Within one call, releases are
    /// grouped by shard in ascending shard order (each shard's own
    /// releases stay in its release order).
    pub shard_releases: Vec<ShardRelease>,
    /// Window indexes completed by *all* shards since the last call,
    /// merged (in index order).
    pub merged: Vec<MergedRelease>,
}

impl From<VecSink> for BatchOutput {
    fn from(sink: VecSink) -> Self {
        BatchOutput {
            shard_releases: sink.shard_releases,
            merged: sink.merged,
        }
    }
}

/// Setup phase of the sharded service (§III-A): subject and consumer
/// registration, then [`ServiceBuilder::build`] to go online.
///
/// **Setup → service phase contract.** The builder is a thin wrapper over
/// the [`ControlPlane`]: every registration stages a command and returns
/// the stable id it assigned (ids are append-only and survive later
/// revocation). [`ServiceBuilder::build`] compiles the staged commands
/// into the **epoch-0** [`EpochPlan`] — the paper's static setup phase —
/// and hands the control plane to the [`ShardedService`], where further
/// registrations stage runtime commands that take effect at the next
/// [`ShardedService::begin_epoch`]. A builder on which nothing is staged
/// after construction builds a service identical to the pre-control-plane
/// static one.
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    config: ServiceConfig,
    control: ControlPlane,
}

impl ServiceBuilder {
    /// Start the setup phase.
    pub fn new(config: ServiceConfig) -> Result<Self, CoreError> {
        if config.n_shards == 0 {
            return Err(CoreError::InvalidService(
                "a service needs at least one shard".into(),
            ));
        }
        let control = ControlPlane::new(ControlPlaneConfig {
            n_types: config.n_types,
            alpha: config.alpha,
            ppm: config.ppm.clone(),
            history_window: config.history_window,
        });
        Ok(ServiceBuilder { config, control })
    }

    /// Register a data subject with no private patterns (a tenant whose
    /// stream needs no protection but must still be routable). Returns the
    /// id (the builder's registration methods all return what they
    /// registered).
    pub fn register_subject(&mut self, subject: SubjectId) -> SubjectId {
        self.control.register_subject(subject)
    }

    /// Data subject `subject`: declare a private pattern to protect.
    pub fn register_private_pattern(&mut self, subject: SubjectId, pattern: Pattern) -> PatternId {
        self.control.register_private_pattern(subject, pattern)
    }

    /// Data consumer: declare a named target-pattern query.
    pub fn register_target_query(&mut self, name: &str, pattern: Pattern) -> (QueryId, PatternId) {
        self.control.add_consumer_query(name, pattern)
    }

    /// Data consumer: declare a named §VII extension query (count,
    /// categorical, argmax) over already-registered patterns. Joins the
    /// same registry as pattern queries: stable [`QueryId`], compiled
    /// into every epoch plan, answered (typed) on the protected view
    /// inside the release path.
    pub fn register_extension_query(&mut self, name: &str, query: &dyn Query) -> QueryId {
        self.control.add_typed_query(name, query)
    }

    /// Register a pattern that is neither private nor queried (kept for
    /// [`PatternId`] parity with an external registry, e.g. a workload).
    pub fn register_pattern(&mut self, pattern: Pattern) -> PatternId {
        self.control.register_pattern(pattern)
    }

    /// Grant access to historical data (required by the adaptive PPM).
    pub fn provide_history(&mut self, windows: WindowedIndicators) {
        self.control.provide_history(windows);
    }

    /// Enable §V-C correlation widening on every epoch compile (including
    /// the initial one); requires history. See
    /// [`ControlPlane::set_correlate_widening`].
    pub fn set_correlate_widening(&mut self, widening: Option<(f64, Epsilon)>) {
        self.control.set_correlate_widening(widening);
    }

    /// Complete setup and go online, deriving each shard's [`DpRng`] from
    /// [`ServiceConfig::seed`] via [`ShardedService::shard_seed`].
    pub fn build(self) -> Result<ShardedService, CoreError> {
        let rngs = (0..self.config.n_shards)
            .map(|s| DpRng::seed_from(ShardedService::shard_seed(self.config.seed, s)))
            .collect();
        self.build_with_rngs(rngs)
    }

    /// Complete setup with explicit per-shard generators (one per shard).
    ///
    /// This is how a replay harness hands the service an already-forked
    /// trial RNG so a 1-shard run reproduces a plain [`StreamingEngine`]
    /// trial bit-for-bit.
    pub fn build_with_rngs(mut self, rngs: Vec<DpRng>) -> Result<ShardedService, CoreError> {
        if rngs.len() != self.config.n_shards {
            return Err(CoreError::InvalidService(format!(
                "{} shard rngs provided for {} shards",
                rngs.len(),
                self.config.n_shards
            )));
        }
        let plan = self.control.compile_initial()?;
        let n_shards = self.config.n_shards;
        let mut routes = RouteTable::new();
        for s in self.control.active_subjects() {
            routes.insert(s, ShardedService::shard_for(s, n_shards) as u32);
        }

        let mut shards = Vec::with_capacity(n_shards);
        for rng in rngs {
            let mut engine = StreamingEngine::from_core(plan.core.clone(), self.config.streaming)?;
            // Pin every shard to the same window origin so all shards run
            // one aligned timeline (required by the merge path, and by the
            // global watermark which may reach a shard before its first
            // event). Closes nothing and draws no randomness.
            engine.advance_watermark(Timestamp::ZERO, &mut DpRng::seed_from(0))?;
            // pre-reserve the reorder heap and the release scratch at one
            // sub-batch of events: like `partition_buffers`, leaving the
            // high-water mark to workload noise would let a late burst pay
            // a realloc mid-ingest and break the zero-allocation gate
            let mut buffer = ReorderBuffer::new(self.config.max_delay);
            buffer.reserve(SUB_BATCH);
            shards.push(Arc::new(Mutex::new(Shard {
                buffer,
                engine,
                rng,
                frontier: Timestamp::ZERO,
                ready: Vec::with_capacity(SUB_BATCH),
            })));
        }
        let mut meta = vec![ShardMeta::default(); n_shards];
        for (_, shard) in routes.iter() {
            meta[shard as usize].n_subjects += 1;
        }

        let parallel = default_parallel(n_shards);
        let workers = if parallel {
            shards
                .iter()
                .map(|s| WorkerHandle::spawn(s.clone()))
                .collect()
        } else {
            Vec::new()
        };
        let (fill, spare) = partition_buffers(n_shards);
        let mut service = ShardedService {
            shards,
            workers,
            parallel,
            meta,
            shard_charges: vec![vec![Vec::new()]; n_shards],
            routes,
            ledgers: Vec::new(),
            query_ledger: EpochLedger::new(),
            merge: MergeState::new(n_shards),
            cores_by_epoch: Vec::new(),
            query_charges_by_epoch: Vec::new(),
            merged_state: QueryStateSet::new(),
            activations: Vec::new(),
            control: self.control,
            pending: VecDeque::new(),
            outbox: VecDeque::new(),
            deferred: None,
            fill,
            spare,
            route_scratch: Vec::new(),
            round_pool: Vec::new(),
            settle_scratch: Vec::new(),
            merged_scratch: Vec::new(),
            wrapper_sink: VecSink::subscribed([]),
            n_types: self.config.n_types,
            max_delay: self.config.max_delay,
            events_ingested: 0,
            finished: false,
            wal: None,
            config: self.config.clone(),
            supervisor: None,
            injector: None,
            rounds_submitted: 0,
            poison_next: vec![false; n_shards],
            needs_respawn: vec![false; n_shards],
            rebuilt: vec![false; n_shards],
            heals: vec![0; n_shards],
            heal_log: Vec::new(),
            degraded: false,
            wal_retries: 0,
            wal_appends: 0,
        };
        service.install_plan(&plan)?;
        Ok(service)
    }
}

/// One shard's resident state: the reorder buffer, the engine and its
/// RNG. Owned by the shard's worker thread in parallel mode (the service
/// thread holds the same `Arc<Mutex<…>>` and locks it only at sync
/// points, when the worker is idle); owned outright in inline mode.
/// Everything the service needs on its own hot path (routing, ledgers,
/// merge accumulators, watermark mirrors) lives on the service side.
#[derive(Debug, Clone)]
struct Shard {
    buffer: ReorderBuffer,
    engine: StreamingEngine,
    rng: DpRng,
    /// The furthest point in stream time this shard's engine has seen
    /// (event pushes and watermark advances); the global watermark is only
    /// applied when it moves a shard forward.
    frontier: Timestamp,
    /// Reused scratch for events the reorder buffer releases per push.
    ready: Vec<Event>,
}

/// One unit of work queued to a shard worker (or run inline at fold time).
#[derive(Debug)]
enum ShardJob {
    /// This shard's slice of a batch, in arrival order: push each event
    /// through the reorder buffer into the engine.
    Ingest(Vec<Event>),
    /// Heartbeat the reorder buffer to `ts`, feeding what it releases.
    Heartbeat(Timestamp),
    /// Advance the shard engine to the global low watermark.
    Advance(Timestamp),
    /// End of stream, phase 1: drain the reorder buffer into the engine.
    Flush,
    /// End of stream, phase 2: align on the final frontier and close the
    /// open window.
    Close(Timestamp),
    /// Scripted fault ([`crate::supervision::Fault::PoisonShard`]): panic
    /// while holding the shard lock so the mutex is genuinely poisoned.
    /// Never submitted in inline mode.
    Poison,
}

impl Shard {
    /// Execute one job and build the reply: the releases it caused, the
    /// emptied ingest buffer (recycled by the partitioner), and a snapshot
    /// of the shard's observable stats — so the service thread can serve
    /// reads from mirrors without ever locking the shard mid-flight.
    fn execute(&mut self, job: ShardJob) -> ShardReply {
        let mut releases = Vec::new();
        let mut recycled = None;
        let error = match job {
            ShardJob::Ingest(mut events) => {
                let mut result = Ok(());
                for event in events.drain(..) {
                    self.buffer.push_into(event, &mut self.ready);
                    if let Err(e) = self.drain_ready(&mut releases) {
                        result = Err(e);
                        break;
                    }
                }
                events.clear();
                recycled = Some(events);
                result.err()
            }
            job => self.run(job, &mut releases).err(),
        };
        ShardReply {
            releases,
            recycled,
            frontier: self.frontier,
            dropped: self.buffer.dropped(),
            buffered: self.buffer.pending(),
            released: self.engine.releases(),
            error,
        }
    }

    /// Execute one non-ingest job against this shard's state, appending
    /// the releases it causes to `out`.
    fn run(&mut self, job: ShardJob, out: &mut Vec<WindowRelease>) -> Result<(), CoreError> {
        match job {
            ShardJob::Ingest(events) => {
                for event in events {
                    self.buffer.push_into(event, &mut self.ready);
                    self.drain_ready(out)?;
                }
                Ok(())
            }
            ShardJob::Heartbeat(ts) => {
                self.buffer.heartbeat_into(ts, &mut self.ready);
                self.drain_ready(out)
            }
            ShardJob::Advance(to) => self.advance_engine(to, out),
            ShardJob::Flush => {
                self.buffer.flush_into(&mut self.ready);
                self.drain_ready(out)
            }
            ShardJob::Close(end) => {
                self.advance_engine(end, out)?;
                if let Some(last) = self.engine.finish(&mut self.rng)? {
                    out.push(last);
                }
                Ok(())
            }
            ShardJob::Poison => std::panic::panic_any(crate::supervision::PoisonPill),
        }
    }

    /// Feed the events the reorder buffer just released into the engine,
    /// reusing the `ready` scratch buffer.
    fn drain_ready(&mut self, out: &mut Vec<WindowRelease>) -> Result<(), CoreError> {
        let mut ready = std::mem::take(&mut self.ready);
        let mut result = Ok(());
        for event in ready.drain(..) {
            self.frontier = self.frontier.max(event.ts);
            if let Err(e) = self.engine.push_into(&event, &mut self.rng, out) {
                result = Err(e);
                break;
            }
        }
        ready.clear();
        self.ready = ready;
        result
    }

    fn advance_engine(
        &mut self,
        to: Timestamp,
        out: &mut Vec<WindowRelease>,
    ) -> Result<(), CoreError> {
        if to > self.frontier {
            self.engine.advance_watermark_into(to, &mut self.rng, out)?;
            self.frontier = to;
        }
        Ok(())
    }
}

/// A shard worker's reply: what one job released, the emptied ingest
/// buffer for reuse, and a stats snapshot the service keeps as mirrors.
/// The shard state itself never moves — it stays resident on the worker.
#[derive(Debug)]
struct ShardReply {
    releases: Vec<WindowRelease>,
    /// The ingest sub-batch buffer, emptied — handed back so the
    /// partitioner reuses it instead of allocating.
    recycled: Option<Vec<Event>>,
    frontier: Timestamp,
    dropped: u64,
    buffered: usize,
    released: usize,
    error: Option<CoreError>,
}

/// How many ingest sub-batches may sit in a shard's job queue before the
/// submitting thread blocks — the backpressure bound of the pipeline.
/// Memory in flight per shard is at most `QUEUE_DEPTH + 2` sub-batch
/// buffers (one filling, one executing).
const QUEUE_DEPTH: usize = 4;

/// Events per ingest sub-batch: the partitioner swaps a shard's fill
/// buffer into the job queue as soon as it holds this many events, so
/// shard work on the front of a large batch overlaps partitioning of its
/// tail.
const SUB_BATCH: usize = 256;

/// The partitioner's double-buffer set, pre-reserved at construction:
/// every fill slot and every pooled spare starts at [`SUB_BATCH`]
/// capacity, so the parallel submit threshold is reached without a
/// single mid-ingest `Vec` growth. Sizing buffers lazily would leave the
/// high-water mark to workload noise — a shard that happens to see fewer
/// than `SUB_BATCH` events per batch during warmup would keep a
/// half-grown buffer and pay a realloc the first time traffic skews its
/// way, breaking the zero-allocation steady state.
fn partition_buffers(n_shards: usize) -> (Vec<Vec<Event>>, Vec<Vec<Event>>) {
    let fill = (0..n_shards)
        .map(|_| Vec::with_capacity(SUB_BATCH))
        .collect();
    // one pool entry for every buffer that can be in flight at once (a
    // full queue, one executing, one filling, per shard) — the same
    // bound `absorb` retains recycled buffers up to
    let spare = (0..(QUEUE_DEPTH + 2) * n_shards)
        .map(|_| Vec::with_capacity(SUB_BATCH))
        .collect();
    (fill, spare)
}

/// The reply lane of one shard worker: an unbounded FIFO over
/// `Mutex<VecDeque>` + `Condvar` instead of `std::sync::mpsc::channel`.
/// The std unbounded channel allocates a fresh block roughly every 32
/// sends, which would put a heap allocation on the steady-state ingest
/// path; this queue reaches its high-water capacity during warmup and
/// then recycles it forever. Occupancy is bounded by the jobs of the
/// in-flight round (*not* by `QUEUE_DEPTH` — a large batch parks every
/// sub-batch reply here until the next call's fold), which is why the
/// lane must stay unbounded: a bounded reply queue would deadlock the
/// submitter against its own uncollected round.
#[derive(Debug, Default)]
struct ReplyQueue {
    inner: Mutex<ReplyQueueInner>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct ReplyQueueInner {
    queue: VecDeque<ShardReply>,
    /// Set (under the lock) when the worker thread exits for any reason —
    /// normal shutdown or a caught panic — so a blocked `recv` wakes up
    /// and maps the shortfall to [`CoreError::ShardWorker`] exactly as the
    /// old channel's `RecvError` did. Buffered replies still drain first.
    disconnected: bool,
}

impl ReplyQueue {
    /// A queue pre-sized for the common occupancy envelope: the queued
    /// jobs of two overlapping pipelined rounds (`QUEUE_DEPTH` each)
    /// plus execution/fold slack. Larger batches can still outgrow this
    /// — the `VecDeque` then grows once and keeps the capacity — but
    /// pre-reserving keeps the typical workload off the allocator even
    /// when reply drain timing varies run to run.
    fn with_default_capacity() -> ReplyQueue {
        ReplyQueue {
            inner: Mutex::new(ReplyQueueInner {
                queue: VecDeque::with_capacity(4 * QUEUE_DEPTH),
                disconnected: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn send(&self, reply: ShardReply) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.queue.push_back(reply);
        drop(inner);
        self.ready.notify_one();
    }

    fn disconnect(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.disconnected = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Pop the next reply in send order, blocking while the queue is
    /// empty and the worker is alive; `None` once the worker is gone and
    /// every buffered reply has been drained.
    fn recv(&self) -> Option<ShardReply> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(reply) = inner.queue.pop_front() {
                return Some(reply);
            }
            if inner.disconnected {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// Flags the reply lane disconnected when the worker thread unwinds or
/// returns — the drop runs on every exit path, so the service can never
/// block forever on a reply that will not come.
struct DisconnectOnExit(Arc<ReplyQueue>);

impl Drop for DisconnectOnExit {
    fn drop(&mut self) {
        self.0.disconnect();
    }
}

/// A persistent per-shard worker thread owning its shard behind an
/// `Arc<Mutex<…>>`. Jobs stream in over a **bounded** SPSC channel
/// (backpressure = a full queue blocks the submitter); replies stream
/// back over an unbounded allocation-recycling [`ReplyQueue`] whose
/// occupancy is bounded by the in-flight round's job count. The service
/// thread locks the shard only at sync points, when the worker has
/// drained its queue and the lock is uncontended.
#[derive(Debug)]
struct WorkerHandle {
    job_tx: Option<SyncSender<ShardJob>>,
    replies: Arc<ReplyQueue>,
    handle: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    fn spawn(shard: Arc<Mutex<Shard>>) -> WorkerHandle {
        let (job_tx, job_rx) = sync_channel::<ShardJob>(QUEUE_DEPTH);
        let replies = Arc::new(ReplyQueue::with_default_capacity());
        let reply_tx = replies.clone();
        let handle = std::thread::Builder::new()
            .name("pdp-shard-worker".into())
            .spawn(move || {
                let _disconnect = DisconnectOnExit(reply_tx.clone());
                while let Ok(job) = job_rx.recv() {
                    // a panic mid-job (scripted poison or an engine bug)
                    // poisons the mutex as the guard unwinds; catch it so
                    // the thread exits cleanly — without a reply — and
                    // the service sees the shortfall at the next fold
                    // instead of an opaque propagated panic at join time
                    let reply = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut shard = shard.lock().unwrap_or_else(|p| p.into_inner());
                        shard.execute(job)
                    }));
                    match reply {
                        Ok(reply) => reply_tx.send(reply),
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn shard worker");
        WorkerHandle {
            job_tx: Some(job_tx),
            replies,
            handle: Some(handle),
        }
    }

    /// Queue one job; blocks while the shard's queue is full (bounded
    /// hand-off). If the worker thread died the job is handed back to the
    /// caller, so a supervised service can run it inline instead.
    fn submit(&self, job: ShardJob) -> Result<(), ShardJob> {
        match self.job_tx.as_ref() {
            None => Err(job),
            Some(tx) => tx.send(job).map_err(|e| e.0),
        }
    }

    /// Whether the worker still accepts jobs: its channel is intact and
    /// its thread has not exited (a panicked worker keeps its sender
    /// until the service notices, so the thread state is checked too).
    fn is_alive(&self) -> bool {
        self.job_tx.is_some() && self.handle.as_ref().is_some_and(|h| !h.is_finished())
    }

    /// Receive the next reply, in submission order (SPSC FIFO). Fails if
    /// the worker thread died without replying.
    fn collect(&self, shard_idx: usize) -> Result<ShardReply, CoreError> {
        self.replies
            .recv()
            .ok_or(CoreError::ShardWorker { shard: shard_idx })
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        // closing the job channel ends the worker loop; then join
        drop(self.job_tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Accumulates shard answers per window index until every shard has
/// released it. Folds answer bits as releases arrive — no release is ever
/// cloned or queued for merging. Rows are sized lazily from the first
/// release observed for their window: the number of active queries is a
/// property of the releasing *epoch*, not of the service, and every shard
/// releases a given window under the same epoch (switches land on one
/// window index).
#[derive(Debug, Clone)]
struct MergeState {
    n_shards: usize,
    /// Index of the lowest window not yet merged (the front of `rows`).
    next_index: usize,
    rows: VecDeque<MergeRow>,
}

#[derive(Debug, Clone)]
struct MergeRow {
    start: Timestamp,
    epoch: u64,
    shards_done: usize,
    answers_any: Vec<bool>,
    positive_shards: Vec<usize>,
    /// Per-type disjunction of the shard releases; `None` until the first
    /// release arrives (placeholder rows created for later indexes).
    union: Option<IndicatorVector>,
}

impl MergeState {
    fn new(n_shards: usize) -> Self {
        MergeState {
            n_shards,
            next_index: 0,
            rows: VecDeque::new(),
        }
    }

    /// Fold one shard release into its window's accumulator.
    fn observe(&mut self, release: &WindowRelease) {
        debug_assert!(
            release.index >= self.next_index,
            "shards release indexes monotonically"
        );
        let offset = release.index - self.next_index;
        while self.rows.len() <= offset {
            self.rows.push_back(MergeRow {
                start: release.start,
                epoch: 0,
                shards_done: 0,
                answers_any: Vec::new(),
                positive_shards: Vec::new(),
                union: None,
            });
        }
        let row = &mut self.rows[offset];
        if row.shards_done == 0 {
            row.answers_any = vec![false; release.answers.len()];
            row.positive_shards = vec![0; release.answers.len()];
            row.epoch = release.epoch;
        }
        debug_assert_eq!(row.epoch, release.epoch, "one epoch per window");
        debug_assert_eq!(row.answers_any.len(), release.answers.len());
        row.start = release.start;
        row.shards_done += 1;
        match &mut row.union {
            Some(union) => union.union_with(&release.protected),
            none => *none = Some(release.protected.clone()),
        }
        for (q, answer) in release.answers.iter().enumerate() {
            if answer.truthy() {
                row.answers_any[q] = true;
                row.positive_shards[q] += 1;
            }
        }
    }

    /// Pop every fully merged window, in index order.
    fn drain_into(&mut self, merged: &mut Vec<MergedRelease>) {
        while self
            .rows
            .front()
            .is_some_and(|row| row.shards_done == self.n_shards)
        {
            let row = self.rows.pop_front().expect("checked non-empty");
            merged.push(MergedRelease {
                index: self.next_index,
                start: row.start,
                epoch: row.epoch,
                answers_any: row.answers_any,
                positive_shards: row.positive_shards,
                protected_any: row
                    .union
                    .expect("n_shards >= 1: at least one release folded"),
                // filled by the service once the epoch's compiled queries
                // evaluate the population view
                typed: Vec::new(),
            });
            self.next_index += 1;
        }
    }
}

/// What one [`ShardedService::begin_epoch`] produced: the compiled plan
/// and the window boundary it activates on. Handing the same pair to
/// independent engines ([`StreamingEngine::schedule_epoch`]) reproduces
/// the service bit-for-bit — the dynamic-setting equivalence anchor.
#[derive(Debug, Clone)]
pub struct EpochTransition {
    /// The first window index released under the new plan. Chosen
    /// deterministically: the lowest index no shard has released yet (the
    /// frontier the global low watermark drives).
    pub activation_index: usize,
    /// The compiled plan itself.
    pub plan: EpochPlan,
}

/// The service-side mirror of one shard's observable state, updated at
/// routing time (`max_seen` — deterministically identical to the shard
/// buffer's clock, because routing sees every event the buffer will see)
/// and from job replies (everything else — exact once in-flight work has
/// folded). Mirrors are what let stats reads and the global low watermark
/// work without locking a shard or waiting on a barrier.
#[derive(Debug, Clone, Default)]
struct ShardMeta {
    /// Subjects routed to this shard. A shard with none can never receive
    /// events, so it must not hold the global low watermark back.
    n_subjects: usize,
    /// Mirror of the shard reorder buffer's `max_seen` clock.
    max_seen: Option<Timestamp>,
    /// Mirror of the shard's stream-time frontier (post-fold).
    frontier: Timestamp,
    /// Mirror of the shard buffer's dropped-event count (post-fold).
    dropped: u64,
    /// Mirror of the shard buffer's pending-event count (post-fold).
    buffered: usize,
    /// Mirror of the shard engine's released-window count (post-fold).
    released: usize,
}

impl ShardMeta {
    /// Mirror of [`pdp_stream::ReorderBuffer::push_into`]'s clock update:
    /// an accepted event raises `max_seen`; a dropped one (ts below the
    /// watermark, hence below `max_seen`) leaves it unchanged — so the
    /// unconditional max is exact in both cases. Heartbeats use the same
    /// rule.
    fn observe(&mut self, ts: Timestamp) {
        self.max_seen = Some(match self.max_seen {
            Some(m) if m >= ts => m,
            _ => ts,
        });
    }

    fn watermark(&self, max_delay: TimeDelta) -> Option<Timestamp> {
        self.max_seen.map(|t| t - max_delay)
    }
}

/// One submitted unit of pipelined work: per shard, either the number of
/// in-flight job replies to collect (parallel mode) or the jobs to run
/// lazily at fold time (inline mode — deferred identically, so inline
/// and parallel services produce bit-identical per-call output).
#[derive(Debug)]
struct Round {
    /// Per shard: replies outstanding on the worker (parallel mode).
    expected: Vec<usize>,
    /// Per shard: jobs queued for lazy execution (inline mode).
    queued: Vec<Vec<ShardJob>>,
    /// This round is the last of its ingestion call: drain the merge
    /// accumulator after settling it.
    ends_call: bool,
}

impl Round {
    fn new(n_shards: usize) -> Round {
        Round {
            expected: vec![0; n_shards],
            queued: (0..n_shards).map(|_| Vec::new()).collect(),
            ends_call: false,
        }
    }

    /// Reset a recycled round for reuse (see `ShardedService::take_round`)
    /// — counters zeroed, queued-job vectors emptied with their capacity
    /// kept, so a pooled round re-enters the pipeline without allocating.
    fn reset(&mut self, n_shards: usize) {
        self.expected.clear();
        self.expected.resize(n_shards, 0);
        self.queued.iter_mut().for_each(Vec::clear);
        self.queued.resize_with(n_shards, Vec::new);
        self.ends_call = false;
    }
}

/// One settled delivery waiting in the outbox. Folding settles releases
/// (ledgers, merge accumulators, control-plane history) immediately;
/// delivery to a consumer sink happens at the next sink-taking call, so
/// sink-less sync points (`begin_epoch`, stats reads, `sync`) never lose
/// output.
#[derive(Debug)]
enum Delivery {
    Shard(ShardRelease),
    Answer(QueryAnswer),
    Merged(MergedRelease),
}

/// `splitmix64`-based hasher for subject routing: one multiply-xor chain
/// per lookup instead of SipHash, on the per-event hot path.
#[derive(Default)]
struct SplitMixHasher(u64);

impl std::hash::Hasher for SplitMixHasher {
    fn finish(&self) -> u64 {
        splitmix64(self.0)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 ^= i;
    }
}

/// Overflow tier of the [`RouteTable`]: a `splitmix64`-hashed map for the
/// sparse subject ids above [`RouteTable::DIRECT_CAP`].
type OverflowMap = HashMap<SubjectId, u32, std::hash::BuildHasherDefault<SplitMixHasher>>;

/// The dense subject → shard routing table of the ingest hot path.
///
/// Small subject ids (the overwhelmingly common case — registration
/// assigns them densely in practice) resolve through `direct`, a flat
/// `Vec<u32>` indexed by the raw id where [`RouteTable::UNROUTED`] marks
/// "unknown or retired": one bounds check plus one load per event, no
/// hashing. Ids at or above [`RouteTable::DIRECT_CAP`] fall back to a
/// `splitmix64`-hashed overflow map so a single huge id cannot balloon
/// the flat table. Both tiers return the shard index; an absent entry is
/// the atomic unknown-subject rejection path of
/// [`ShardedService::push_batch`].
///
/// The table is rebuilt wholesale at routing boundaries (build, epoch
/// activation, restore) and its buffers are retained across rebuilds —
/// steady-state ingest never allocates here.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    /// Shard index per raw subject id; [`RouteTable::UNROUTED`] = not
    /// routable. Sized to the largest routed id below the cap, +1.
    direct: Vec<u32>,
    /// Routes for subject ids ≥ [`RouteTable::DIRECT_CAP`].
    overflow: OverflowMap,
    /// Routable subjects across both tiers.
    len: usize,
}

impl RouteTable {
    /// Sentinel marking an unrouted slot in the direct tier (also why
    /// [`RouteTable::insert`] rejects `u32::MAX` as a shard index).
    pub const UNROUTED: u32 = u32::MAX;

    /// Largest raw subject id (exclusive) served by the flat direct tier;
    /// ids beyond it route through the hashed overflow tier. 2^20 slots =
    /// 4 MiB — covers a million densely-registered subjects flat.
    pub const DIRECT_CAP: u64 = 1 << 20;

    /// An empty table (nothing routable).
    pub fn new() -> RouteTable {
        RouteTable::default()
    }

    /// Number of routable subjects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no subject is routable.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Unroute everything, keeping both tiers' capacity for the rebuild.
    pub fn clear(&mut self) {
        self.direct.iter_mut().for_each(|s| *s = Self::UNROUTED);
        self.overflow.clear();
        self.len = 0;
    }

    /// Route `subject` to `shard` (last insert wins; `shard` must not be
    /// `u32::MAX`, which is reserved as the unrouted sentinel).
    pub fn insert(&mut self, subject: SubjectId, shard: u32) {
        debug_assert_ne!(shard, Self::UNROUTED, "u32::MAX is the unrouted sentinel");
        if subject.0 < Self::DIRECT_CAP {
            let idx = subject.0 as usize;
            if idx >= self.direct.len() {
                self.direct.resize(idx + 1, Self::UNROUTED);
            }
            if self.direct[idx] == Self::UNROUTED {
                self.len += 1;
            }
            self.direct[idx] = shard;
        } else if self.overflow.insert(subject, shard).is_none() {
            self.len += 1;
        }
    }

    /// The shard `subject` routes to, or `None` for unknown/retired
    /// subjects — the per-event hot-path probe.
    #[inline]
    pub fn lookup(&self, subject: SubjectId) -> Option<u32> {
        let id = subject.0;
        if (id as usize) < self.direct.len() {
            let shard = self.direct[id as usize];
            (shard != Self::UNROUTED).then_some(shard)
        } else if id < Self::DIRECT_CAP {
            None
        } else {
            self.overflow.get(&subject).copied()
        }
    }

    /// Every routed `(subject, shard)` pair, direct tier first (ascending
    /// id), then the overflow tier in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (SubjectId, u32)> + '_ {
        self.direct
            .iter()
            .enumerate()
            .filter(|(_, &shard)| shard != Self::UNROUTED)
            .map(|(id, &shard)| (SubjectId(id as u64), shard))
            .chain(self.overflow.iter().map(|(&s, &shard)| (s, shard)))
    }
}

/// The online sharded multi-tenant service. Built by [`ServiceBuilder`].
#[derive(Debug)]
pub struct ShardedService {
    /// Shard-resident state, shared with the worker threads in parallel
    /// mode. The service thread locks a shard only at sync points (all
    /// in-flight work folded, workers idle) or in inline mode — both
    /// uncontended by construction.
    shards: Vec<Arc<Mutex<Shard>>>,
    /// One persistent worker thread per shard (empty in inline mode).
    workers: Vec<WorkerHandle>,
    /// The recorded execution mode: decided once at build time (or by
    /// [`ShardedService::set_parallel`]), never re-derived — clones copy
    /// it, and [`ShardedService::is_parallel`] reports it.
    parallel: bool,
    /// Per-shard observable-state mirrors (see [`ShardMeta`]).
    meta: Vec<ShardMeta>,
    /// Per shard, indexed by epoch: `(dense subject index, pattern,
    /// per-release ε)` to charge on every release of that epoch. Kept for
    /// *all* epochs — releases of an earlier epoch can still settle after
    /// a later plan was staged. Service-side so folding never touches a
    /// shard lock. In memory the subject is its dense intern index (the
    /// settle path indexes `ledgers` directly); the checkpoint wire format
    /// stays `SubjectId`-keyed, converted at the image boundary.
    shard_charges: Vec<Vec<Vec<(u32, PatternId, Epsilon)>>>,
    /// Routing for *active* (non-retired) subjects.
    routes: RouteTable,
    /// Per-subject epoch-aware accounting, indexed by the control plane's
    /// dense intern index. Ledgers of retired subjects keep their slot —
    /// their spend stays queryable and is never refunded. May lag
    /// `ControlPlane::dense_count` for subjects staged but not yet
    /// activated (they have no charges to settle yet).
    ledgers: Vec<EpochLedger<PatternId>>,
    /// Epoch-aware accounting of the non-boolean consumer queries'
    /// dedicated budgets (argmax draws), charged per shard release.
    query_ledger: EpochLedger<QueryId>,
    merge: MergeState,
    /// Every compiled epoch core, indexed by epoch: the merge path
    /// evaluates each merged window's typed answers under the epoch that
    /// released it.
    cores_by_epoch: Vec<OnlineCore>,
    /// Per-epoch `(query, ε)` charge schedule for the query ledger.
    query_charges_by_epoch: Vec<Vec<(QueryId, Epsilon)>>,
    /// Trailing-window state of the population-level (merged) stateful
    /// queries, keyed by stable id (merged rows emit in strict index
    /// order, so this is deterministic).
    merged_state: QueryStateSet,
    /// The control plane: staged runtime commands, the append-only
    /// registries, and the sliding released-window history.
    control: ControlPlane,
    /// `(activation_index, epoch)` of every scheduled transition, in
    /// scheduling order — how the service knows which epoch's queries are
    /// in force without reading a shard engine.
    activations: Vec<(usize, u64)>,
    /// Submitted-but-unfolded rounds, oldest first (the pipeline lag).
    pending: VecDeque<Round>,
    /// Settled deliveries awaiting the next sink-taking call.
    outbox: VecDeque<Delivery>,
    /// The first error a folded round produced, surfaced by the next
    /// fallible operation (deliveries already settled stay settled).
    deferred: Option<CoreError>,
    /// Per-shard sub-batch fill buffers (the partitioner's double-buffer
    /// front half).
    fill: Vec<Vec<Event>>,
    /// Emptied sub-batch buffers recycled from shard replies.
    spare: Vec<Vec<Event>>,
    /// Persistent scratch for the per-batch route resolution — cleared
    /// and refilled each `push_batch`, never reallocated once warmed.
    route_scratch: Vec<u32>,
    /// Recycled [`Round`]s: folding returns a round's vectors here so the
    /// next submission reuses their capacity instead of allocating.
    round_pool: Vec<Round>,
    /// Persistent scratch for the releases one shard's fold settles.
    settle_scratch: Vec<WindowRelease>,
    /// Persistent scratch for the merged rows one fold drains.
    merged_scratch: Vec<MergedRelease>,
    /// The persistent no-subscription sink behind the legacy
    /// return-value wrappers (`push_batch`, `advance_watermark`,
    /// `finish`, `checkpoint`) — one sink reused across calls instead of
    /// one constructed per call.
    wrapper_sink: VecSink,
    n_types: usize,
    max_delay: TimeDelta,
    events_ingested: u64,
    finished: bool,
    /// The attached write-ahead log, if any. Every accepted input is
    /// journaled here before (commands) or as (batches, watermarks,
    /// transitions) it takes effect — see the module-level crash
    /// consistency contract. `None` = durability off, zero overhead.
    wal: Option<WalWriter>,
    /// The construction parameters, kept so a supervised heal can restore
    /// a scratch service from a checkpoint without caller involvement.
    config: ServiceConfig,
    /// Supervision policy ([`ShardedService::set_supervisor`]); `None`
    /// keeps the historical fail-fast behavior: typed errors, no healing.
    supervisor: Option<SupervisorConfig>,
    /// Scripted chaos ([`ShardedService::inject_faults`]), consulted at
    /// every round submission and WAL append attempt.
    injector: Option<FaultInjector>,
    /// Pipeline rounds submitted so far; [`FaultPlan`] rounds are
    /// 1-based indices into this counter.
    rounds_submitted: u64,
    /// Shards flagged to receive a poison job at the head of their next
    /// eligible round (scripted [`Fault::PoisonShard`]).
    poison_next: Vec<bool>,
    /// Shards whose worker died and must be respawned (or the service
    /// degraded) at the end of the current fold.
    needs_respawn: Vec<bool>,
    /// Whether a pending respawn came from a checkpoint + WAL rebuild
    /// (reported as [`HealAction::Rebuilt`] instead of `Respawned`).
    rebuilt: Vec<bool>,
    /// Per-shard heal count: respawns plus rebuilds.
    heals: Vec<u32>,
    /// Every heal performed, in order, for [`ShardedService::health`].
    heal_log: Vec<HealEvent>,
    /// Whether the supervisor exhausted a shard's heal budget and
    /// switched the service to inline execution for good.
    degraded: bool,
    /// WAL append retries performed (attempts beyond each first try).
    wal_retries: u64,
    /// WAL append attempts, including retries — the counter scripted
    /// [`Fault::WalAppendFailure`]s index into.
    wal_appends: u64,
}

/// The default execution-mode policy, consulted **once** at build time:
/// parallel when there is both more than one shard *and* more than one
/// core — on a single-core host (or a 1-shard service) the channel
/// round-trips are pure overhead, so shards run inline. Either mode
/// produces bit-identical output; [`ShardedService::set_parallel`]
/// overrides the choice explicitly, and [`ShardedService::is_parallel`]
/// reports which mode is actually live.
fn default_parallel(n_shards: usize) -> bool {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    n_shards > 1 && cores > 1
}

impl Clone for ShardedService {
    /// Clones shard state (buffers, engines, RNGs, accumulators) into
    /// fresh `Arc`s and spawns a fresh worker pool when the recorded mode
    /// is parallel (never re-derived from the host). The pipeline must be
    /// quiescent: in-flight jobs reference state that cannot be cloned
    /// mid-round. An attached [`WalWriter`] is **not** cloned — a log file
    /// has one writer; the copy starts without durability.
    ///
    /// # Panics
    /// If rounds are still in flight — call [`ShardedService::sync`]
    /// first, or use the non-panicking [`ShardedService::try_clone`].
    fn clone(&self) -> Self {
        assert!(
            self.pending.is_empty(),
            "clone requires a quiescent pipeline: call sync() before clone()"
        );
        let shards: Vec<Arc<Mutex<Shard>>> = self
            .shards
            .iter()
            .map(|s| {
                let shard = s.lock().unwrap_or_else(|p| p.into_inner());
                Arc::new(Mutex::new(shard.clone()))
            })
            .collect();
        let workers = if self.parallel {
            shards
                .iter()
                .map(|s| WorkerHandle::spawn(s.clone()))
                .collect()
        } else {
            Vec::new()
        };
        let (fill, spare) = partition_buffers(self.shards.len());
        ShardedService {
            shards,
            workers,
            parallel: self.parallel,
            meta: self.meta.clone(),
            shard_charges: self.shard_charges.clone(),
            routes: self.routes.clone(),
            ledgers: self.ledgers.clone(),
            query_ledger: self.query_ledger.clone(),
            merge: self.merge.clone(),
            cores_by_epoch: self.cores_by_epoch.clone(),
            query_charges_by_epoch: self.query_charges_by_epoch.clone(),
            merged_state: self.merged_state.clone(),
            control: self.control.clone(),
            activations: self.activations.clone(),
            pending: VecDeque::new(),
            outbox: self
                .outbox
                .iter()
                .map(|d| match d {
                    Delivery::Shard(r) => Delivery::Shard(r.clone()),
                    Delivery::Answer(a) => Delivery::Answer(a.clone()),
                    Delivery::Merged(m) => Delivery::Merged(m.clone()),
                })
                .collect(),
            deferred: None,
            fill,
            spare,
            route_scratch: Vec::new(),
            round_pool: Vec::new(),
            settle_scratch: Vec::new(),
            merged_scratch: Vec::new(),
            wrapper_sink: VecSink::subscribed([]),
            n_types: self.n_types,
            max_delay: self.max_delay,
            events_ingested: self.events_ingested,
            finished: self.finished,
            wal: None,
            config: self.config.clone(),
            // policy and heal history travel with the copy; the scripted
            // injector does not — chaos targets one service instance
            supervisor: self.supervisor.clone(),
            injector: None,
            rounds_submitted: self.rounds_submitted,
            poison_next: vec![false; self.shards.len()],
            needs_respawn: vec![false; self.shards.len()],
            rebuilt: vec![false; self.shards.len()],
            heals: self.heals.clone(),
            heal_log: self.heal_log.clone(),
            degraded: self.degraded,
            wal_retries: self.wal_retries,
            wal_appends: self.wal_appends,
        }
    }
}

impl ShardedService {
    /// The deterministic subject → shard assignment (splitmix64 of the
    /// subject id, reduced modulo `n_shards`). Stable across runs and Rust
    /// versions — partition equivalence tests depend on it.
    pub fn shard_for(subject: SubjectId, n_shards: usize) -> usize {
        assert!(n_shards > 0, "shard_for needs at least one shard");
        (splitmix64(subject.0) % n_shards as u64) as usize
    }

    /// The seed shard `shard` derives its [`DpRng`] from.
    ///
    /// Shard 0 keeps the base seed unchanged so a 1-shard service is
    /// bit-for-bit a [`StreamingEngine`] driven with
    /// `DpRng::seed_from(base)`; higher shards mix the shard index in.
    pub fn shard_seed(base: u64, shard: usize) -> u64 {
        if shard == 0 {
            base
        } else {
            base ^ splitmix64(shard as u64)
        }
    }

    /// Ingest one batch of keyed events, in arrival order. Events may be
    /// out of temporal order up to the configured bounded delay; later
    /// ones are dropped (see [`ShardedService::dropped`]). Returns every
    /// release the batch caused, plus the window indexes newly completed
    /// by all shards.
    ///
    /// The batch is partitioned once and the per-shard sub-batches run on
    /// the persistent shard workers in parallel (inline for a 1-shard
    /// service); results are folded back in shard order, so output and
    /// accounting are deterministic.
    ///
    /// The call is atomic with respect to registration: every subject in
    /// the batch is resolved *before* any event is ingested, so an
    /// [`CoreError::UnknownSubject`] rejection leaves the service — and
    /// the releases a partial batch would have produced — untouched.
    pub fn push_batch(&mut self, batch: Vec<KeyedEvent>) -> Result<BatchOutput, CoreError> {
        self.with_wrapper_sink(|service, sink| service.push_batch_into(batch, sink))
    }

    /// A fresh round for submission, recycled from the pool when one is
    /// available (its vectors keep their capacity across the pipeline).
    fn take_round(&mut self) -> Round {
        match self.round_pool.pop() {
            Some(mut round) => {
                round.reset(self.shards.len());
                round
            }
            None => Round::new(self.shards.len()),
        }
    }

    /// Run one sink-delivering operation through the persistent
    /// no-subscription wrapper sink (subscribed to no query ids:
    /// [`BatchOutput`] carries releases only, so answer records would be
    /// built and dropped) and collect what it delivered. The sink lives
    /// on the service — constructed once, reused by every legacy
    /// return-value wrapper — and a release-less call moves nothing, so
    /// the wrapper adds no per-call allocation. On error, deliveries the
    /// failed call already made are discarded exactly as the per-call
    /// sinks used to be.
    fn with_wrapper_sink(
        &mut self,
        op: impl FnOnce(&mut Self, &mut VecSink) -> Result<(), CoreError>,
    ) -> Result<BatchOutput, CoreError> {
        let mut sink = std::mem::take(&mut self.wrapper_sink);
        let result = op(self, &mut sink);
        let output = BatchOutput {
            shard_releases: std::mem::take(&mut sink.shard_releases),
            merged: std::mem::take(&mut sink.merged),
        };
        sink.answers.clear();
        self.wrapper_sink = sink;
        result.map(|()| output)
    }

    /// Sink-delivering form of [`ShardedService::push_batch`]: every
    /// release and every subscribed [`QueryAnswer`] record is pushed into
    /// `sink` (see [`ReleaseSink`] for the delivery-order contract)
    /// instead of being collected into a return value — the zero-copy
    /// consumer path. On error, deliveries already made stay delivered:
    /// they are real releases that spent budget.
    ///
    /// Ingestion is **pipelined with a one-call lag**: this call first
    /// settles and delivers the previous `push_batch` round, then
    /// partitions and submits its own and returns while the shards are
    /// still working on it. Sub-batches are swapped into each shard's
    /// bounded job queue as they fill (a full queue blocks — the
    /// backpressure contract), and the deferred releases are delivered by
    /// the next call, or by any draining sync point
    /// ([`ShardedService::advance_watermark`], [`ShardedService::finish`],
    /// [`ShardedService::sync`], stats reads).
    pub fn push_batch_into<S: ReleaseSink>(
        &mut self,
        batch: Vec<KeyedEvent>,
        sink: &mut S,
    ) -> Result<(), CoreError> {
        self.ensure_live()?;
        // scripted worker faults land before the fold, while the previous
        // round may still be in flight (a killed worker drains its queue
        // before exiting, so that round still settles deterministically)
        self.apply_due_faults();
        // settle and deliver the previous round (the pipeline lag)
        self.fold_pending();
        self.flush_outbox(sink);
        self.take_deferred()?;
        // atomic rejection: resolve every subject before any event moves.
        // The resolution buffer is persistent scratch — cleared, refilled
        // through the dense route table, and handed back below.
        let mut routes = std::mem::take(&mut self.route_scratch);
        routes.clear();
        for keyed in &batch {
            match self.routes.lookup(keyed.subject) {
                Some(shard) => routes.push(shard),
                None => {
                    let unknown = keyed.subject.0;
                    self.route_scratch = routes;
                    return Err(CoreError::UnknownSubject(unknown));
                }
            }
        }
        // journal the batch once it is known valid and before any event
        // moves: the log holds exactly the batches that were applied, and
        // a failed append rejects the batch as atomically as a bad subject
        if let Err(e) = self.wal_append(|wal| wal.append_batch(&batch)) {
            self.route_scratch = routes;
            return Err(e);
        }
        let n_events = batch.len() as u64;
        let mut round = self.take_round();
        self.submit_poisons(&mut round);
        // partition into per-shard sub-batches in arrival order (event
        // ownership moves all the way through), mirroring each shard
        // buffer's clock; in parallel mode a filled sub-batch is submitted
        // immediately, overlapping shard work with the rest of the split
        for (keyed, &shard) in batch.into_iter().zip(&routes) {
            let shard_idx = shard as usize;
            self.meta[shard_idx].observe(keyed.event.ts);
            self.fill[shard_idx].push(keyed.event);
            if self.parallel && self.fill[shard_idx].len() >= SUB_BATCH {
                self.submit_fill(shard_idx, &mut round);
            }
        }
        self.route_scratch = routes;
        // remainders, in shard order
        for shard_idx in 0..self.shards.len() {
            if !self.fill[shard_idx].is_empty() {
                self.submit_fill(shard_idx, &mut round);
            }
        }
        self.events_ingested += n_events;
        // the global low watermark is exact from the routing-time mirrors,
        // so the advance rides in the same round — no barrier between
        // ingestion and watermark alignment (a stale-or-equal target is a
        // shard-side no-op)
        if let Some(low) = self.low_watermark_unsynced() {
            for shard_idx in 0..self.shards.len() {
                self.submit_job(shard_idx, ShardJob::Advance(low), &mut round);
            }
        }
        round.ends_call = true;
        self.push_round(round);
        // a dead worker surfaces here, on the submitting call (unless a
        // supervisor queued the lost jobs for inline execution at fold)
        self.take_deferred()
    }

    /// Heartbeat: behave as if every source had just been observed at
    /// `ts` — each shard buffer's watermark advances to `ts − max_delay`
    /// (events up to `max_delay` late are still accepted afterwards), and
    /// the global low watermark then drives every shard engine forward,
    /// releasing quiet windows.
    pub fn advance_watermark(&mut self, ts: Timestamp) -> Result<BatchOutput, CoreError> {
        self.with_wrapper_sink(|service, sink| service.advance_watermark_into(ts, sink))
    }

    /// Sink-delivering form of [`ShardedService::advance_watermark`].
    ///
    /// A draining sync point: the previous round settles and delivers
    /// first, then the heartbeat round runs to completion and delivers —
    /// nothing is left in flight when this returns.
    pub fn advance_watermark_into<S: ReleaseSink>(
        &mut self,
        ts: Timestamp,
        sink: &mut S,
    ) -> Result<(), CoreError> {
        self.ensure_live()?;
        self.apply_due_faults();
        self.fold_pending();
        self.flush_outbox(sink);
        self.take_deferred()?;
        self.wal_append(|wal| wal.append(&WalRecord::Watermark(ts)))?;
        let mut round = self.take_round();
        self.submit_poisons(&mut round);
        for shard_idx in 0..self.shards.len() {
            self.meta[shard_idx].observe(ts);
            self.submit_job(shard_idx, ShardJob::Heartbeat(ts), &mut round);
        }
        if let Some(low) = self.low_watermark_unsynced() {
            for shard_idx in 0..self.shards.len() {
                self.submit_job(shard_idx, ShardJob::Advance(low), &mut round);
            }
        }
        round.ends_call = true;
        self.push_round(round);
        self.fold_pending();
        self.flush_outbox(sink);
        self.take_deferred()
    }

    /// End of stream: drain every reorder buffer into its engine, align
    /// every shard on one final frontier (the furthest any shard reached —
    /// the stream ends at the same instant for every tenant, so the last
    /// windows merge too), close the open windows, and merge. The service
    /// rejects ingestion afterwards.
    pub fn finish(&mut self) -> Result<BatchOutput, CoreError> {
        self.with_wrapper_sink(|service, sink| service.finish_into(sink))
    }

    /// Sink-delivering form of [`ShardedService::finish`].
    ///
    /// The terminal sync point: drains the pipeline, flushes and closes
    /// every shard, and delivers everything before sealing the service.
    pub fn finish_into<S: ReleaseSink>(&mut self, sink: &mut S) -> Result<(), CoreError> {
        self.ensure_live()?;
        // worker kills may land here (their jobs are preserved and run
        // inline); scripted poisons never lead a finish round — replaying
        // a `Finish` record mid-finish would double-close the shard — so
        // `submit_poisons` is deliberately not called below
        self.apply_due_faults();
        self.fold_pending();
        self.flush_outbox(sink);
        self.take_deferred()?;
        self.wal_append(|wal| wal.append(&WalRecord::Finish))?;
        self.finished = true;
        let mut flush = self.take_round();
        for shard_idx in 0..self.shards.len() {
            self.submit_job(shard_idx, ShardJob::Flush, &mut flush);
        }
        self.push_round(flush);
        // barrier: the final frontier needs every shard's flushed clock
        self.fold_pending();
        let end = self
            .meta
            .iter()
            .map(|m| m.frontier)
            .max()
            .expect("n_shards >= 1");
        let mut close = self.take_round();
        for shard_idx in 0..self.shards.len() {
            self.submit_job(shard_idx, ShardJob::Close(end), &mut close);
        }
        close.ends_call = true;
        self.push_round(close);
        self.fold_pending();
        self.flush_outbox(sink);
        self.take_deferred()
    }

    /// Graceful close — the one correct teardown path. Equivalent to
    /// calling [`ShardedService::finish`] (if the stream is still open)
    /// followed by a WAL fsync, in the right order:
    ///
    /// 1. the pipeline drains and every in-flight round settles;
    /// 2. every shard flushes its reorder buffer and closes its open
    ///    windows on one aligned final frontier (skipped when the service
    ///    is already finished — `shutdown` is idempotent);
    /// 3. everything settled is delivered (here into the legacy
    ///    [`BatchOutput`]; see [`ShardedService::shutdown_into`] for the
    ///    sink form);
    /// 4. the attached WAL, if any, is fsynced — the true durability
    ///    barrier, so nothing accepted before the shutdown can be lost.
    ///
    /// Callers no longer need to know to call `sync()` / `finish` / the
    /// WAL's own [`WalWriter::sync`] in the right order; the network
    /// edge (`pdp-server`) tears the service down through exactly this
    /// path.
    pub fn shutdown(&mut self) -> Result<BatchOutput, CoreError> {
        self.with_wrapper_sink(|service, sink| service.shutdown_into(sink))
    }

    /// Sink-delivering form of [`ShardedService::shutdown`]: settles the
    /// pipeline, finishes the stream (unless already finished), flushes
    /// every pending delivery into `sink`, and fsyncs the WAL. Idempotent:
    /// a second call only re-drains (a no-op on an idle service) and
    /// re-fsyncs.
    pub fn shutdown_into<S: ReleaseSink>(&mut self, sink: &mut S) -> Result<(), CoreError> {
        if self.finished {
            // already sealed: just settle anything in flight and deliver
            self.fold_pending();
            self.flush_outbox(sink);
            self.take_deferred()?;
        } else {
            self.finish_into(sink)?;
        }
        if let Some(wal) = self.wal.as_mut() {
            wal.sync()?;
        }
        Ok(())
    }

    /// Settle fully merged windows into the outbox — typed answers first
    /// (one [`QueryAnswer`] per active query, ascending id; subscription
    /// filtering happens at delivery), then the [`MergedRelease`] itself —
    /// and feed each population-level protected view into the control
    /// plane's sliding history (the online adaptive PPM's input).
    /// Deterministic and draw-free: typed answers are pure functions of
    /// the already-noised merged row, so computing them at fold time (even
    /// when no sink subscribes) changes no randomness downstream.
    fn drain_merged(&mut self) {
        let mut rows = std::mem::take(&mut self.merged_scratch);
        rows.clear();
        self.merge.drain_into(&mut rows);
        for mut row in rows.drain(..) {
            self.control.observe_release(&row.protected_any);
            // a window tagged with an uninstalled epoch is runtime
            // corruption, not a caller bug: report it typed and deliver
            // the merged row without typed answers instead of panicking
            let Some(core) = self.cores_by_epoch.get(row.epoch as usize) else {
                self.deferred
                    .get_or_insert(CoreError::InvalidService(format!(
                        "merged window {} released under unknown epoch {}",
                        row.index, row.epoch
                    )));
                self.outbox.push_back(Delivery::Merged(row));
                continue;
            };
            row.typed =
                core.answer_merged(&row.answers_any, &row.protected_any, &mut self.merged_state);
            for (query, answer) in &row.typed {
                self.outbox.push_back(Delivery::Answer(QueryAnswer {
                    query: *query,
                    window: row.index,
                    epoch: row.epoch,
                    answer: answer.clone(),
                }));
            }
            self.outbox.push_back(Delivery::Merged(row));
        }
        self.merged_scratch = rows;
    }

    // ---- the runtime command surface (control plane) ----
    //
    // Every method below *stages* a command; nothing takes effect until
    // `begin_epoch` compiles the staged batch into an `EpochPlan` and
    // fans it out. Ids are assigned at staging time and are stable
    // forever (append-only registries).
    //
    // With a WAL attached, every command is journaled *before* it is
    // staged (true write-ahead): a command the control plane rejects is
    // in the log too, and its replay re-fails deterministically — see
    // `durability::replay_into`.

    /// Journal one command from the infallible staging wrappers; the
    /// record is only built when a WAL is attached, and an append failure
    /// is deferred to the next fallible operation (these wrappers have no
    /// error channel of their own).
    fn note_command(&mut self, command: impl FnOnce() -> Command) {
        if self.wal.is_some() {
            let command = command();
            if let Err(e) = self.wal_append(|wal| wal.append_command(&command)) {
                self.deferred.get_or_insert(e);
            }
        }
    }

    /// Journal one command from the fallible staging wrappers, surfacing
    /// an append failure immediately (before the command stages — the log
    /// never misses a staged command).
    fn log_command(&mut self, command: impl FnOnce() -> Command) -> Result<(), CoreError> {
        if self.wal.is_some() {
            let command = command();
            self.wal_append(|wal| wal.append_command(&command))
        } else {
            Ok(())
        }
    }

    /// Stage: a new tenant joins (routable from the next epoch on).
    pub fn register_subject(&mut self, subject: SubjectId) -> SubjectId {
        self.note_command(|| Command::RegisterSubject(subject));
        self.control.register_subject(subject)
    }

    /// Stage: a tenant leaves. From the next epoch on their events are
    /// rejected and their patterns stop charging; spend already recorded
    /// is never refunded.
    pub fn retire_subject(&mut self, subject: SubjectId) -> Result<(), CoreError> {
        self.log_command(|| Command::RetireSubject(subject))?;
        self.control.retire_subject(subject)
    }

    /// Stage: a tenant declares a new private pattern (protected and
    /// charged from the next epoch on).
    pub fn register_private_pattern(&mut self, subject: SubjectId, pattern: Pattern) -> PatternId {
        self.note_command(|| Command::RegisterPrivatePattern {
            subject,
            pattern: pattern.clone(),
        });
        self.control.register_private_pattern(subject, pattern)
    }

    /// Stage: a tenant withdraws a private pattern — it stops being
    /// protected and charged from the next epoch on, and never refunds.
    pub fn revoke_private_pattern(
        &mut self,
        subject: SubjectId,
        pattern: PatternId,
    ) -> Result<(), CoreError> {
        self.log_command(|| Command::RevokePrivatePattern { subject, pattern })?;
        self.control.revoke_private_pattern(subject, pattern)
    }

    /// Stage: a consumer adds a named target-pattern query (answered from
    /// the next epoch on).
    pub fn add_consumer_query(&mut self, name: &str, pattern: Pattern) -> (QueryId, PatternId) {
        self.note_command(|| Command::AddConsumerQuery {
            name: name.to_owned(),
            pattern: pattern.clone(),
        });
        self.control.add_consumer_query(name, pattern)
    }

    /// Stage: a consumer adds a named §VII extension query (count,
    /// categorical, argmax — anything implementing [`Query`]); answered
    /// (typed) from the next epoch on, with argmax budgets charged
    /// through the service's query ledger.
    pub fn add_extension_query(&mut self, name: &str, query: &dyn Query) -> QueryId {
        self.note_command(|| Command::AddTypedQuery {
            name: name.to_owned(),
            spec: query.spec(),
        });
        self.control.add_typed_query(name, query)
    }

    /// Stage: a consumer withdraws a query (unanswered from the next
    /// epoch on).
    pub fn remove_consumer_query(&mut self, query: QueryId) -> Result<(), CoreError> {
        self.log_command(|| Command::RemoveConsumerQuery(query))?;
        self.control.remove_consumer_query(query)
    }

    /// Stage: grant (replace) the explicit historical data the adaptive
    /// PPM optimizes against at the next transition.
    pub fn provide_history(&mut self, windows: WindowedIndicators) {
        self.note_command(|| Command::ProvideHistory(windows.clone()));
        self.control.provide_history(windows);
    }

    /// Stage one [`Command`] in enum form (schedules as data).
    pub fn submit(&mut self, command: Command) -> Result<CommandOutcome, CoreError> {
        if let Some(wal) = self.wal.as_mut() {
            wal.append_command(&command)?;
        }
        self.control.submit(command)
    }

    /// Read access to the control plane (registries, staged state,
    /// effective history).
    pub fn control(&self) -> &ControlPlane {
        &self.control
    }

    /// The control-plane epoch currently compiled (releases may still be
    /// settling under earlier epochs until the activation boundary).
    pub fn epoch(&self) -> u64 {
        self.control.epoch()
    }

    /// Compile every staged command into the next epoch and fan the plan
    /// out to all shards. Returns `Ok(None)` when nothing is staged (a
    /// zero-command schedule leaves the service bit-for-bit unchanged).
    ///
    /// The transition is **deterministic**: the plan is compiled from the
    /// control plane's state alone, and the activation boundary is the
    /// first window index no shard has released yet — the frontier the
    /// global low watermark has driven the shards to. Every shard (and
    /// any independent engine handed the returned
    /// `(activation_index, plan)`) switches on that same window. Windows
    /// below the boundary still release, charge and answer under the plan
    /// that was in force when they were current; under the adaptive PPM
    /// the new plan re-distributes each subject's pattern budget with
    /// [`optimize_all`](crate::adaptive::optimize_all) over the control
    /// plane's effective history.
    pub fn begin_epoch(&mut self) -> Result<Option<EpochTransition>, CoreError> {
        self.ensure_live()?;
        // a sync point: the activation boundary needs every shard's true
        // release count, so in-flight rounds settle first (settled
        // deliveries stay queued for the next sink-taking call)
        self.fold_pending();
        self.take_deferred()?;
        if !self.control.has_pending() {
            return Ok(None);
        }
        let plan = self.control.compile_next()?;
        let activation_index = self
            .meta
            .iter()
            .map(|m| m.released)
            .max()
            .expect("n_shards >= 1");
        // compile the detector-side pattern swap ONCE on the service
        // thread; every shard activates the shared precompiled plan at the
        // boundary instead of re-running the pattern compiler per shard at
        // window close (the off-hot-path epoch activation)
        let swap = Arc::new(PreparedPatternSwap::prepare(
            plan.core.patterns().clone(),
            self.n_types,
        ));
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let mut guard = shard
                .lock()
                .map_err(|_| CoreError::ShardPoisoned { shard: shard_idx })?;
            guard.engine.schedule_epoch_prepared(
                activation_index,
                plan.core.clone(),
                swap.clone(),
            )?;
        }
        self.activations.push((activation_index, plan.epoch));
        // routing: newly active subjects become routable, retired ones
        // stop (their buffered events still drain through the engine)
        let n_shards = self.shards.len();
        self.routes.clear();
        for meta in &mut self.meta {
            meta.n_subjects = 0;
        }
        for s in self.control.active_subjects() {
            let shard_idx = Self::shard_for(s, n_shards);
            self.routes.insert(s, shard_idx as u32);
            self.meta[shard_idx].n_subjects += 1;
        }
        self.install_plan(&plan)?;
        // journaled only once the whole transition succeeded: a crash
        // anywhere above discards it wholesale, and recovery resumes
        // cleanly under the previous epoch (the staged commands are in the
        // log individually and re-stage on replay)
        self.wal_append(|wal| wal.append(&WalRecord::BeginEpoch))?;
        Ok(Some(EpochTransition {
            activation_index,
            plan,
        }))
    }

    /// Wire one compiled plan into the bookkeeping shared by the initial
    /// build and every transition: the per-shard per-epoch charge
    /// schedules and the per-subject epoch ledgers (register caps for
    /// newly charged patterns, fence everything the plan dropped).
    fn install_plan(&mut self, plan: &EpochPlan) -> Result<(), CoreError> {
        let epoch = plan.epoch as usize;
        // plans install strictly in epoch order (a failed compile never
        // burns the number), so the epoch-indexed schedules are dense
        debug_assert_eq!(self.cores_by_epoch.len(), epoch);
        self.cores_by_epoch.push(plan.core.clone());
        self.query_charges_by_epoch.push(plan.query_charges.clone());
        for &(query, eps) in &plan.query_charges {
            self.query_ledger
                .register(query, eps)
                .map_err(CoreError::Dp)?;
        }
        for query in self.query_ledger.keys() {
            if !plan.query_charges.iter().any(|(q, _)| *q == query) {
                self.query_ledger.retire(&query, plan.epoch);
            }
        }
        for charges in &mut self.shard_charges {
            if charges.len() <= epoch {
                charges.resize(epoch + 1, Vec::new());
            } else {
                charges[epoch].clear();
            }
        }
        // every interned subject gets a ledger slot (dense-indexed; empty
        // slots are inert — nothing charges them until a plan does)
        if self.ledgers.len() < self.control.dense_count() {
            self.ledgers
                .resize_with(self.control.dense_count(), EpochLedger::new);
        }
        let mut active: Vec<Vec<(PatternId, Epsilon)>> = vec![Vec::new(); self.ledgers.len()];
        for &(subject, pid, eps) in &plan.charges {
            let (Some(shard_idx), Some(dense)) = (
                self.routes.lookup(subject),
                self.control.dense_index(subject),
            ) else {
                return Err(CoreError::InvalidService(format!(
                    "epoch {} charges {subject} which is not routed to any shard",
                    plan.epoch
                )));
            };
            self.shard_charges[shard_idx as usize][epoch].push((dense, pid, eps));
            active[dense as usize].push((pid, eps));
        }
        for (dense, ledger) in self.ledgers.iter_mut().enumerate() {
            let keep = std::mem::take(&mut active[dense]);
            for pid in ledger.keys() {
                if !keep.iter().any(|(kept, _)| *kept == pid) {
                    ledger.retire(&pid, plan.epoch);
                }
            }
            for (pid, eps) in keep {
                ledger.register(pid, eps).map_err(CoreError::Dp)?;
            }
        }
        Ok(())
    }

    /// Swap one shard's filled sub-batch buffer for a spare and submit it
    /// — the double-buffered hand-off: the partitioner keeps writing into
    /// the fresh buffer while the full one travels to the worker, and the
    /// worker sends the emptied Vec back for reuse.
    fn submit_fill(&mut self, shard_idx: usize, round: &mut Round) {
        // the pool is pre-sized to cover every in-flight buffer (see
        // `partition_buffers`), so the fallback should never fire — but
        // if it does, start the replacement at full capacity instead of
        // growing it push by push
        let next = self
            .spare
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(SUB_BATCH));
        let chunk = std::mem::replace(&mut self.fill[shard_idx], next);
        self.submit_job(shard_idx, ShardJob::Ingest(chunk), round);
    }

    /// Route one job into the current round: parallel mode sends it into
    /// the shard's bounded queue right away (a full queue blocks — that is
    /// the backpressure), inline mode queues it for execution at fold
    /// time. Either way the job is folded back in shard order.
    ///
    /// A dead worker never fails the round mid-flight — replies already in
    /// the air still fold, so the pipeline's reply accounting never
    /// desynchronizes. What happens to the bounced job depends on
    /// supervision: unsupervised, [`CoreError::ShardWorker`] is deferred
    /// (the historical fail-fast contract). Supervised with a *clean*
    /// shard mutex, the job is requeued for inline execution at fold time
    /// — same lock, same order, bit-for-bit the fault-free output — and
    /// the worker is respawned at the sync point. Supervised with a
    /// *poisoned* mutex the job is dropped: the shard state cannot be
    /// trusted, and the checkpoint + WAL rebuild at fold time re-derives
    /// the whole round from the journal instead.
    fn submit_job(&mut self, shard_idx: usize, job: ShardJob, round: &mut Round) {
        if self.parallel {
            match self.workers[shard_idx].submit(job) {
                Ok(()) => round.expected[shard_idx] += 1,
                Err(job) => {
                    if self.supervisor.is_none() {
                        self.deferred
                            .get_or_insert(CoreError::ShardWorker { shard: shard_idx });
                    } else if !self.shards[shard_idx].is_poisoned() {
                        round.queued[shard_idx].push(job);
                        self.needs_respawn[shard_idx] = true;
                    }
                }
            }
        } else {
            round.queued[shard_idx].push(job);
        }
    }

    /// Settle every in-flight round: collect (or, inline, run) each
    /// shard's jobs, fold the releases into ledgers, merge accumulators
    /// and the outbox — **in shard order within each round**, which is the
    /// reorder stage that keeps accounting and output deterministic while
    /// replies arrive whenever shards finish. Errors are deferred to the
    /// next fallible operation; everything released before a failure still
    /// settles (it spent budget).
    fn fold_pending(&mut self) {
        while let Some(round) = self.pending.pop_front() {
            self.fold_round(round);
        }
        // the pipeline is quiescent here — the sync point where dead
        // workers are respawned (or the service degrades)
        self.heal_workers();
    }

    fn fold_round(&mut self, mut round: Round) {
        let mut releases = std::mem::take(&mut self.settle_scratch);
        for shard_idx in 0..self.shards.len() {
            releases.clear();
            for _ in 0..round.expected[shard_idx] {
                match self.workers[shard_idx].collect(shard_idx) {
                    Ok(reply) => self.absorb(shard_idx, reply, &mut releases),
                    Err(e) => {
                        // replies are lost (the worker panicked mid-round):
                        // heal by rebuilding this one shard from durability,
                        // recovering the round's missing releases in place
                        // so settlement continues in fault-free order
                        round.queued[shard_idx].clear();
                        if let Err(heal_err) = self.heal_lost_replies(shard_idx, &mut releases, e) {
                            self.deferred.get_or_insert(heal_err);
                        }
                        break;
                    }
                }
            }
            if !round.queued[shard_idx].is_empty() {
                let shard = self.shards[shard_idx].clone();
                match shard.lock() {
                    Ok(mut guard) => {
                        for job in round.queued[shard_idx].drain(..) {
                            // a poison that bounced off a dead worker is
                            // unachievable inline: executing it would
                            // panic the service thread, which the typed-
                            // error contract forbids — drop it instead
                            if matches!(job, ShardJob::Poison) {
                                continue;
                            }
                            let reply = guard.execute(job);
                            self.absorb(shard_idx, reply, &mut releases);
                        }
                    }
                    // a poisoned lock is a typed error, never a panic
                    Err(_) => {
                        self.deferred
                            .get_or_insert(CoreError::ShardPoisoned { shard: shard_idx });
                    }
                };
            }
            self.settle(shard_idx, &mut releases);
        }
        self.settle_scratch = releases;
        let ends_call = round.ends_call;
        // recycle the round's vectors for the next submission (bounded:
        // the pipeline holds at most a handful of rounds at once)
        if self.round_pool.len() < 4 {
            self.round_pool.push(round);
        }
        if ends_call {
            self.drain_merged();
        }
    }

    /// Fold one shard reply: refresh the service-side stats mirror,
    /// recycle the emptied ingest buffer, defer any error (first in
    /// shard/submission order wins) and stage the releases for settling.
    fn absorb(&mut self, shard_idx: usize, reply: ShardReply, releases: &mut Vec<WindowRelease>) {
        let meta = &mut self.meta[shard_idx];
        meta.frontier = reply.frontier;
        meta.dropped = reply.dropped;
        meta.buffered = reply.buffered;
        meta.released = reply.released;
        if let Some(buf) = reply.recycled {
            // retain enough spares to cover every buffer that can be in
            // flight at once (a full queue, one executing, one filling,
            // per shard) — fewer would force steady-state reallocation
            if self.spare.len() < (QUEUE_DEPTH + 2) * self.shards.len() {
                self.spare.push(buf);
            }
        }
        if let Some(e) = reply.error {
            self.deferred.get_or_insert(e);
        }
        releases.extend(reply.releases);
    }

    /// Deliver everything the folds settled, in settling order. Answer
    /// records are filtered by the sink's subscriptions here, at delivery
    /// time — folds triggered by sink-less operations lose nothing.
    fn flush_outbox<S: ReleaseSink>(&mut self, sink: &mut S) {
        while let Some(delivery) = self.outbox.pop_front() {
            match delivery {
                Delivery::Shard(release) => sink.shard_release(release),
                Delivery::Answer(answer) => {
                    if sink.wants(answer.query) {
                        sink.answer(answer);
                    }
                }
                Delivery::Merged(merged) => sink.merged_release(merged),
            }
        }
    }

    // ---- supervision: scripted faults, healing, health ----

    /// Enable supervision: dead workers are healed in place, WAL appends
    /// are retried, and the service degrades to inline execution instead
    /// of failing terminally once a shard's heal budget is exhausted. See
    /// [`crate::supervision`] for the healing contract. Without a
    /// supervisor the service keeps its historical fail-fast behavior.
    pub fn set_supervisor(&mut self, config: SupervisorConfig) {
        self.supervisor = Some(config);
    }

    /// The active supervision policy, if any.
    pub fn supervisor(&self) -> Option<&SupervisorConfig> {
        self.supervisor.as_ref()
    }

    /// Arm a scripted [`FaultPlan`] (replacing any previous one): the
    /// service consults it before every round submission and WAL append,
    /// so a chaos scenario reproduces exactly from the plan alone.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Scripted faults that have not fired yet (0 when no plan is armed).
    /// Worker faults never fire in inline mode — there is no worker
    /// thread to kill — so inline chaos runs end with those remaining.
    pub fn faults_remaining(&self) -> usize {
        self.injector.as_ref().map_or(0, FaultInjector::remaining)
    }

    /// Supervision snapshot: execution mode, degradation flag, per-shard
    /// liveness/poison/heal counts, WAL retry counters and the heal log.
    /// A sync point (in-flight rounds fold first) so liveness is current;
    /// deferred errors stay deferred — this is a read, not a drain.
    pub fn health(&mut self) -> HealthReport {
        self.fold_pending();
        HealthReport {
            parallel: self.parallel,
            degraded: self.degraded,
            wal_retries: self.wal_retries,
            wal_appends: self.wal_appends,
            shards: (0..self.shards.len())
                .map(|shard_idx| ShardHealth {
                    shard: shard_idx,
                    alive: !self.parallel || self.workers[shard_idx].is_alive(),
                    poisoned: self.shards[shard_idx].is_poisoned(),
                    heals: self.heals[shard_idx],
                })
                .collect(),
            events: self.heal_log.clone(),
        }
    }

    /// Fire the scripted worker faults due before the next round: kills
    /// sever the target's job channel now (mid-pipeline — the previous
    /// round may still be in flight), poisons flag the shard so a poison
    /// job leads its next eligible round. No-ops in inline mode: there is
    /// no worker thread to fault.
    fn apply_due_faults(&mut self) {
        let Some(injector) = self.injector.as_mut() else {
            return;
        };
        let next_round = self.rounds_submitted + 1;
        for fault in injector.due_before_round(next_round) {
            match fault {
                DueFault::Kill { shard } => {
                    if self.parallel && shard < self.workers.len() {
                        self.workers[shard].job_tx = None;
                    }
                }
                DueFault::Poison { shard } => {
                    if self.parallel && shard < self.poison_next.len() {
                        self.poison_next[shard] = true;
                    }
                }
            }
        }
    }

    /// Lead the round with the flagged poison jobs (parallel mode only —
    /// an inline poison would panic the service thread itself, which is
    /// exactly what the typed-error contract forbids).
    fn submit_poisons(&mut self, round: &mut Round) {
        if !self.parallel {
            self.poison_next.iter_mut().for_each(|f| *f = false);
            return;
        }
        for shard_idx in 0..self.shards.len() {
            if std::mem::take(&mut self.poison_next[shard_idx]) {
                self.submit_job(shard_idx, ShardJob::Poison, round);
            }
        }
    }

    /// Queue one built round and advance the round counter the
    /// [`FaultPlan`] schedule is indexed by.
    fn push_round(&mut self, round: Round) {
        self.pending.push_back(round);
        self.rounds_submitted += 1;
    }

    /// Append to the WAL (no-op when none is attached) with supervised
    /// retry: a failed attempt — scripted or real — is retried up to
    /// [`SupervisorConfig::wal_retry_limit`] times with doubling backoff
    /// before the operation is rejected. Scripted failures are consulted
    /// *before* the physical write, so they are genuinely transient; real
    /// failures reposition the writer first (see `WalWriter`), so a retry
    /// overwrites any partial frame.
    fn wal_append<F>(&mut self, mut op: F) -> Result<(), CoreError>
    where
        F: FnMut(&mut WalWriter) -> Result<(), CoreError>,
    {
        if self.wal.is_none() {
            return Ok(());
        }
        let (retries, backoff) = match self.supervisor.as_ref() {
            Some(sup) => (sup.wal_retry_limit, sup.wal_retry_backoff),
            None => (0, std::time::Duration::ZERO),
        };
        let mut last = None;
        for attempt in 0..=retries {
            if attempt > 0 {
                self.wal_retries += 1;
                let pause = backoff * 2u32.saturating_pow(attempt - 1);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            self.wal_appends += 1;
            let scripted_failure = self
                .injector
                .as_mut()
                .is_some_and(|i| i.wal_append_should_fail(self.wal_appends));
            let result = if scripted_failure {
                Err(CoreError::Durability(format!(
                    "injected transient failure of wal append attempt {}",
                    self.wal_appends
                )))
            } else {
                op(self.wal.as_mut().expect("checked non-None above"))
            };
            match result {
                Ok(()) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Heal a shard whose worker died *mid-round* (replies lost):
    /// unsupervised this surfaces the typed error; supervised it rebuilds
    /// the shard from the last checkpoint plus a WAL-tail replay and
    /// recovers the crashed round's missing releases into `releases`, so
    /// the caller settles them in fault-free order.
    fn heal_lost_replies(
        &mut self,
        shard_idx: usize,
        releases: &mut Vec<WindowRelease>,
        base: CoreError,
    ) -> Result<(), CoreError> {
        let base = if self.shards[shard_idx].is_poisoned() {
            CoreError::ShardPoisoned { shard: shard_idx }
        } else {
            base
        };
        let Some(sup) = self.supervisor.clone() else {
            return Err(base);
        };
        let (Some(ckpt), Some(wal)) = (sup.checkpoint, sup.wal) else {
            // no durability artifacts to rebuild from: surface typed
            return Err(base);
        };
        self.rebuild_shard(shard_idx, &ckpt, &wal, releases)?;
        self.needs_respawn[shard_idx] = true;
        self.rebuilt[shard_idx] = true;
        Ok(())
    }

    /// Rebuild one shard from durability: restore the checkpoint into a
    /// scratch service, replay the WAL tail inline, then steal the
    /// target shard's state and stats mirror and harvest the releases the
    /// live service has not settled yet. The other shards' state is
    /// untouched.
    fn rebuild_shard(
        &mut self,
        shard_idx: usize,
        ckpt_path: &Path,
        wal_path: &Path,
        releases: &mut Vec<WindowRelease>,
    ) -> Result<(), CoreError> {
        let mut checkpoint = read_checkpoint(ckpt_path)?;
        // the scratch replay is single-threaded by construction (inline
        // and parallel modes are bit-identical, and a worker pool for a
        // throwaway replay would be pure overhead)
        checkpoint.parallel = false;
        let records = read_wal_from(wal_path, checkpoint.wal_offset)?;
        let mut scratch = ShardedService::restore(self.config.clone(), checkpoint)?;
        let mut sink = VecSink::all();
        replay_into(&mut scratch, records, &mut sink)?;
        scratch.sync()?;
        scratch.flush_outbox(&mut sink);
        if scratch.events_ingested != self.events_ingested {
            return Err(CoreError::Durability(format!(
                "shard {shard_idx} rebuild diverged: replay ingested {} events, \
                 the live service accepted {} — the checkpoint/WAL pair is stale",
                scratch.events_ingested, self.events_ingested
            )));
        }
        // everything below `released_before` already settled live; the
        // rebuilt releases at or above it are the crashed round's output
        let released_before = self.meta[shard_idx].released;
        let rebuilt = scratch.shards[shard_idx]
            .lock()
            .map_err(|_| CoreError::ShardPoisoned { shard: shard_idx })?
            .clone();
        self.shards[shard_idx] = Arc::new(Mutex::new(rebuilt));
        self.meta[shard_idx] = scratch.meta[shard_idx].clone();
        for shard_release in sink.shard_releases {
            if shard_release.shard == shard_idx && shard_release.release.index >= released_before {
                releases.push(shard_release.release);
            }
        }
        Ok(())
    }

    /// Respawn the workers flagged dead, or — once a shard's heal budget
    /// is exhausted — tear the pool down and degrade to inline execution
    /// for good. Runs only at sync points (pipeline quiescent), so
    /// replacing a worker never strands an in-flight reply.
    fn heal_workers(&mut self) {
        if !self.parallel {
            self.needs_respawn.iter_mut().for_each(|f| *f = false);
            self.rebuilt.iter_mut().for_each(|f| *f = false);
            return;
        }
        for shard_idx in 0..self.shards.len() {
            if !std::mem::take(&mut self.needs_respawn[shard_idx]) {
                continue;
            }
            let action = if std::mem::take(&mut self.rebuilt[shard_idx]) {
                HealAction::Rebuilt
            } else {
                HealAction::Respawned
            };
            self.heals[shard_idx] += 1;
            let round = self.rounds_submitted;
            let budget = self
                .supervisor
                .as_ref()
                .map_or(0, |sup| sup.max_heal_attempts);
            if self.heals[shard_idx] > budget {
                // heal budget exhausted: keep serving, single-threaded —
                // inline output is bit-identical, only parallelism is lost
                self.heal_log.push(HealEvent {
                    shard: shard_idx,
                    round,
                    action: HealAction::Degraded,
                });
                self.degraded = true;
                self.parallel = false;
                self.workers.clear();
                self.needs_respawn.iter_mut().for_each(|f| *f = false);
                self.rebuilt.iter_mut().for_each(|f| *f = false);
                return;
            }
            self.workers[shard_idx] = WorkerHandle::spawn(self.shards[shard_idx].clone());
            self.heal_log.push(HealEvent {
                shard: shard_idx,
                round,
                action,
            });
        }
    }

    /// Surface the first error any fold deferred.
    fn take_deferred(&mut self) -> Result<(), CoreError> {
        match self.deferred.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Drain the pipeline: settle every in-flight round and surface any
    /// deferred error. Settled deliveries stay queued for the next
    /// sink-taking call. Required before [`Clone`]; a no-op on an idle
    /// service.
    pub fn sync(&mut self) -> Result<(), CoreError> {
        self.fold_pending();
        self.take_deferred()
    }

    /// Non-panicking [`Clone`]: drains the pipeline first (so in-flight
    /// rounds settle instead of tripping the quiescence assertion), then
    /// clones. Surfaces any deferred error instead of hiding it in the
    /// copy. The attached WAL, if any, stays with `self`.
    pub fn try_clone(&mut self) -> Result<Self, CoreError> {
        self.sync()?;
        Ok(self.clone())
    }

    /// Attach a write-ahead log: from now on every accepted input is
    /// journaled per the module-level crash consistency contract.
    /// Replaces (and returns) a previously attached writer.
    pub fn attach_wal(&mut self, wal: WalWriter) -> Option<WalWriter> {
        self.wal.replace(wal)
    }

    /// Detach the write-ahead log (durability off; the returned writer
    /// can be synced or dropped by the caller).
    pub fn detach_wal(&mut self) -> Option<WalWriter> {
        self.wal.take()
    }

    /// Byte offset of the attached WAL after the last journaled record,
    /// `None` without a WAL. A checkpoint taken now records this offset
    /// as its replay cursor.
    pub fn wal_offset(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.offset())
    }

    /// The [`SubjectId`] behind one dense intern index. Total for every
    /// index the service stores (the registry is append-only); a miss is
    /// internal corruption, reported typed rather than panicking.
    fn subject_for_dense(&self, dense: u32) -> Result<SubjectId, CoreError> {
        self.control.subject_of_dense(dense).ok_or_else(|| {
            CoreError::InvalidService(format!(
                "dense subject index {dense} is not interned in the control plane"
            ))
        })
    }

    /// Image the full service state into a [`ServiceCheckpoint`] — a
    /// **checkpoint-safe sync point**: every in-flight round folds and the
    /// outbox flushes into `sink` first, so the image never contains an
    /// in-flight round or an undelivered release, and everything it does
    /// contain has already been delivered and charged. The image pairs
    /// with the [`ServiceConfig`] the service was built with
    /// ([`ShardedService::restore`]) and records the WAL offset recovery
    /// should replay from.
    ///
    /// The imaged state includes every shard's RNG position: a restored
    /// service resumes the per-shard randomness streams mid-sequence,
    /// which is what makes recovery bit-for-bit (the flips already
    /// released before the checkpoint are never redrawn, and the ones
    /// after it redraw identically).
    pub fn checkpoint_into<S: ReleaseSink>(
        &mut self,
        sink: &mut S,
    ) -> Result<ServiceCheckpoint, CoreError> {
        self.fold_pending();
        self.flush_outbox(sink);
        self.take_deferred()?;
        // workers are idle (all rounds folded): the shard locks are
        // uncontended, exactly as at every other sync point. A poisoned
        // shard must never be imaged — its state may be mid-job.
        let mut shards = Vec::with_capacity(self.shards.len());
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let guard = shard
                .lock()
                .map_err(|_| CoreError::ShardPoisoned { shard: shard_idx })?;
            shards.push(ShardCheckpoint {
                buffer: guard.buffer.snapshot(),
                engine: guard.engine.snapshot(),
                rng: guard.rng.state(),
                frontier: guard.frontier,
            });
        }
        let meta = self
            .meta
            .iter()
            .map(|m| ShardMetaSnapshot {
                max_seen: m.max_seen,
                frontier: m.frontier,
                dropped: m.dropped,
                buffered: m.buffered,
                released: m.released,
            })
            .collect();
        // the wire format stays subject-keyed: dense indexes resolve back
        // through the control plane at the image boundary, sorted so equal
        // states encode byte-identically
        let mut ledgers = Vec::with_capacity(self.ledgers.len());
        for (dense, ledger) in self.ledgers.iter().enumerate() {
            ledgers.push((self.subject_for_dense(dense as u32)?, ledger.snapshot()));
        }
        ledgers.sort_unstable_by_key(|(subject, _)| *subject);
        let mut shard_charges = Vec::with_capacity(self.shard_charges.len());
        for per_epoch in &self.shard_charges {
            let mut epochs = Vec::with_capacity(per_epoch.len());
            for charges in per_epoch {
                let mut wire = Vec::with_capacity(charges.len());
                for &(dense, pid, eps) in charges {
                    wire.push((self.subject_for_dense(dense)?, pid, eps));
                }
                epochs.push(wire);
            }
            shard_charges.push(epochs);
        }
        let merge = MergeSnapshot {
            next_index: self.merge.next_index,
            rows: self
                .merge
                .rows
                .iter()
                .map(|row| MergeRowSnapshot {
                    start: row.start,
                    epoch: row.epoch,
                    shards_done: row.shards_done,
                    answers_any: row.answers_any.clone(),
                    positive_shards: row.positive_shards.clone(),
                    union: row.union.clone(),
                })
                .collect(),
        };
        Ok(ServiceCheckpoint {
            parallel: self.parallel,
            shards,
            meta,
            shard_charges,
            ledgers,
            query_ledger: self.query_ledger.snapshot(),
            merge,
            cores_by_epoch: self.cores_by_epoch.iter().map(|c| c.snapshot()).collect(),
            query_charges_by_epoch: self.query_charges_by_epoch.clone(),
            merged_state: self.merged_state.snapshot(),
            control: self.control.snapshot(),
            activations: self.activations.clone(),
            events_ingested: self.events_ingested,
            finished: self.finished,
            wal_offset: self.wal.as_ref().map(|w| w.offset()).unwrap_or(0),
        })
    }

    /// [`ShardedService::checkpoint_into`] through a throwaway sink,
    /// returning the releases the drain delivered alongside the image
    /// (they are real output — a caller that discards them loses windows).
    pub fn checkpoint(&mut self) -> Result<(ServiceCheckpoint, BatchOutput), CoreError> {
        let mut image = None;
        let output = self.with_wrapper_sink(|service, sink| {
            image = Some(service.checkpoint_into(sink)?);
            Ok(())
        })?;
        Ok((image.expect("set on the Ok path above"), output))
    }

    /// Rebuild a service from a checkpoint image and the [`ServiceConfig`]
    /// it was built with. Routing, worker threads and compiled artifacts
    /// (flip plans, NFAs) are re-derived deterministically; dynamic state
    /// (windows, ledgers, RNG positions, merge accumulators, the control
    /// plane) comes from the image. The restored service has no WAL
    /// attached — [`ShardedService::recover_into`] is the full recovery
    /// path.
    pub fn restore(
        config: ServiceConfig,
        checkpoint: ServiceCheckpoint,
    ) -> Result<Self, CoreError> {
        if config.n_shards == 0 {
            return Err(CoreError::InvalidService(
                "a service needs at least one shard".into(),
            ));
        }
        if checkpoint.shards.len() != config.n_shards
            || checkpoint.meta.len() != config.n_shards
            || checkpoint.shard_charges.len() != config.n_shards
        {
            return Err(CoreError::Durability(format!(
                "checkpoint has {} shards, config expects {} (shard count \
                 cannot change across recovery: subject routing is shard-\
                 count dependent)",
                checkpoint.shards.len(),
                config.n_shards
            )));
        }
        let control = ControlPlane::restore(
            ControlPlaneConfig {
                n_types: config.n_types,
                alpha: config.alpha,
                ppm: config.ppm.clone(),
                history_window: config.history_window,
            },
            checkpoint.control,
        );
        let n_shards = config.n_shards;
        let mut routes = RouteTable::new();
        for s in control.active_subjects() {
            routes.insert(s, Self::shard_for(s, n_shards) as u32);
        }
        // the image is subject-keyed on the wire; re-key ledgers and
        // charge schedules by the restored control plane's dense indexes
        // (the intern table itself rides in the control snapshot)
        let mut ledgers: Vec<EpochLedger<PatternId>> = Vec::new();
        ledgers.resize_with(control.dense_count(), EpochLedger::new);
        for (subject, snapshot) in checkpoint.ledgers {
            let Some(dense) = control.dense_index(subject) else {
                return Err(CoreError::Durability(format!(
                    "checkpoint carries a ledger for {subject}, which the \
                     imaged control plane never registered"
                )));
            };
            ledgers[dense as usize] = EpochLedger::restore(snapshot);
        }
        let mut shard_charges = Vec::with_capacity(checkpoint.shard_charges.len());
        for per_epoch in checkpoint.shard_charges {
            let mut epochs = Vec::with_capacity(per_epoch.len());
            for charges in per_epoch {
                let mut dense_charges = Vec::with_capacity(charges.len());
                for (subject, pid, eps) in charges {
                    let Some(dense) = control.dense_index(subject) else {
                        return Err(CoreError::Durability(format!(
                            "checkpoint charge schedule references {subject}, \
                             which the imaged control plane never registered"
                        )));
                    };
                    dense_charges.push((dense, pid, eps));
                }
                epochs.push(dense_charges);
            }
            shard_charges.push(epochs);
        }
        let mut shards = Vec::with_capacity(n_shards);
        for image in checkpoint.shards {
            // same pre-reservation as the builder: a recovered service
            // honors the zero-allocation steady-state contract immediately
            let mut buffer = ReorderBuffer::restore(image.buffer);
            buffer.reserve(SUB_BATCH);
            shards.push(Arc::new(Mutex::new(Shard {
                buffer,
                engine: StreamingEngine::restore(image.engine)?,
                rng: DpRng::from_state(image.rng),
                frontier: image.frontier,
                ready: Vec::with_capacity(SUB_BATCH),
            })));
        }
        let mut meta: Vec<ShardMeta> = checkpoint
            .meta
            .into_iter()
            .map(|m| ShardMeta {
                n_subjects: 0,
                max_seen: m.max_seen,
                frontier: m.frontier,
                dropped: m.dropped,
                buffered: m.buffered,
                released: m.released,
            })
            .collect();
        for (_, shard_idx) in routes.iter() {
            meta[shard_idx as usize].n_subjects += 1;
        }
        let merge = MergeState {
            n_shards,
            next_index: checkpoint.merge.next_index,
            rows: checkpoint
                .merge
                .rows
                .into_iter()
                .map(|row| MergeRow {
                    start: row.start,
                    epoch: row.epoch,
                    shards_done: row.shards_done,
                    answers_any: row.answers_any,
                    positive_shards: row.positive_shards,
                    union: row.union,
                })
                .collect(),
        };
        let cores_by_epoch: Vec<OnlineCore> = checkpoint
            .cores_by_epoch
            .into_iter()
            .map(OnlineCore::restore)
            .collect::<Result<_, _>>()?;
        let parallel = checkpoint.parallel && n_shards > 1;
        let workers = if parallel {
            shards
                .iter()
                .map(|s| WorkerHandle::spawn(s.clone()))
                .collect()
        } else {
            Vec::new()
        };
        let (fill, spare) = partition_buffers(n_shards);
        Ok(ShardedService {
            shards,
            workers,
            parallel,
            meta,
            shard_charges,
            routes,
            ledgers,
            query_ledger: EpochLedger::restore(checkpoint.query_ledger),
            merge,
            cores_by_epoch,
            query_charges_by_epoch: checkpoint.query_charges_by_epoch,
            merged_state: QueryStateSet::restore(checkpoint.merged_state),
            control,
            activations: checkpoint.activations,
            pending: VecDeque::new(),
            outbox: VecDeque::new(),
            deferred: None,
            fill,
            spare,
            route_scratch: Vec::new(),
            round_pool: Vec::new(),
            settle_scratch: Vec::new(),
            merged_scratch: Vec::new(),
            wrapper_sink: VecSink::subscribed([]),
            n_types: config.n_types,
            max_delay: config.max_delay,
            events_ingested: checkpoint.events_ingested,
            finished: checkpoint.finished,
            wal: None,
            poison_next: vec![false; n_shards],
            needs_respawn: vec![false; n_shards],
            rebuilt: vec![false; n_shards],
            heals: vec![0; n_shards],
            heal_log: Vec::new(),
            degraded: false,
            wal_retries: 0,
            wal_appends: 0,
            config,
            supervisor: None,
            injector: None,
            rounds_submitted: 0,
        })
    }

    /// Full crash recovery: restore the checkpoint image, replay the WAL
    /// tail (every complete record at byte offset ≥
    /// [`ServiceCheckpoint::wal_offset`]) through the normal entry points
    /// — delivering the re-derived releases into `sink` — and re-attach
    /// the log for appending (positioned after its last complete record,
    /// so a torn tail from the crash is overwritten).
    ///
    /// The recovered service is bit-for-bit the uninterrupted one: same
    /// deliveries, same ledger spends, same low watermark
    /// (`tests/crash_recovery.rs` is the anchor).
    pub fn recover_into<S: ReleaseSink>(
        config: ServiceConfig,
        checkpoint: ServiceCheckpoint,
        wal_path: &Path,
        sink: &mut S,
    ) -> Result<Self, CoreError> {
        let records = read_wal_from(wal_path, checkpoint.wal_offset)?;
        let mut service = Self::restore(config, checkpoint)?;
        // replay with no WAL attached: the records are already durable
        replay_into(&mut service, records, sink)?;
        service.attach_wal(WalWriter::open_append(wal_path)?);
        Ok(service)
    }

    /// Book one shard's releases everywhere they matter: the per-subject
    /// ledgers, the query ledger, the merge accumulators, and the
    /// caller's sink (which takes ownership — releases are never cloned).
    ///
    /// Charging is epoch-aware: releases arrive in index order, so their
    /// epochs are non-decreasing, and each run of same-epoch releases
    /// charges that epoch's schedule in one ledger pass. Releases of an
    /// epoch that has since been superseded still charge *their own*
    /// epoch's schedule — a revocation staged later never rewrites what an
    /// earlier plan already released.
    ///
    /// Accounting invariants (installed schedules, registered ledgers,
    /// caps) are enforced as *deferred typed errors*, never panics: a
    /// violation records the first [`CoreError`] for the next fallible
    /// call while deliveries keep flowing, so a corrupted plan cannot
    /// poison the whole service.
    fn settle(&mut self, shard_idx: usize, releases: &mut Vec<WindowRelease>) {
        if releases.is_empty() {
            return;
        }
        let mut i = 0;
        while i < releases.len() {
            let epoch = releases[i].epoch;
            let mut j = i + 1;
            while j < releases.len() && releases[j].epoch == epoch {
                j += 1;
            }
            let Some(charges) = self.shard_charges[shard_idx].get(epoch as usize) else {
                self.deferred
                    .get_or_insert(CoreError::InvalidService(format!(
                        "shard {shard_idx} released windows under epoch {epoch} \
                     with no installed charge schedule"
                    )));
                i = j;
                continue;
            };
            for &(dense, pid, eps) in charges {
                let Some(ledger) = self.ledgers.get_mut(dense as usize) else {
                    self.deferred
                        .get_or_insert(CoreError::InvalidService(format!(
                            "epoch {epoch} charges dense subject index {dense} \
                             which has no budget ledger"
                        )));
                    continue;
                };
                if let Err(e) = ledger.charge_releases(pid, epoch, eps, j - i) {
                    self.deferred.get_or_insert(CoreError::Dp(e));
                }
            }
            let Some(query_charges) = self.query_charges_by_epoch.get(epoch as usize) else {
                self.deferred
                    .get_or_insert(CoreError::InvalidService(format!(
                        "epoch {epoch} released windows with no installed query charge schedule"
                    )));
                i = j;
                continue;
            };
            for &(query, eps) in query_charges {
                if let Err(e) = self.query_ledger.charge_releases(query, epoch, eps, j - i) {
                    self.deferred.get_or_insert(CoreError::Dp(e));
                }
            }
            i = j;
        }
        for release in releases.drain(..) {
            self.merge.observe(&release);
            self.outbox.push_back(Delivery::Shard(ShardRelease {
                shard: shard_idx,
                release,
            }));
        }
    }

    /// The global low watermark: the minimum of the shard buffers'
    /// watermarks, or `None` until every shard that can receive events has
    /// observed stream time. Shards with no registered subjects can never
    /// receive events and are excluded (they are advanced *by* the global
    /// watermark instead of contributing to it); a service with no
    /// subjects at all has no watermark.
    ///
    /// A draining read like every other stats getter: in-flight rounds
    /// settle first, so the reported watermark never runs ahead of state
    /// changes the caller can observe (deliveries, spends). The value
    /// itself comes from the routing-time clock mirrors and is exact
    /// even mid-pipeline — the drain aligns the *rest* of the service
    /// with it, not the other way around.
    pub fn low_watermark(&mut self) -> Option<Timestamp> {
        self.fold_pending();
        self.low_watermark_unsynced()
    }

    /// The mirror read behind [`ShardedService::low_watermark`], used on
    /// the ingestion hot path where the current round is *intentionally*
    /// still in flight. Exact without a sync: the mirror tracks the max
    /// timestamp ever routed to (or heartbeat at) each shard, which is
    /// precisely the reorder buffer's clock (late arrivals below the
    /// watermark never raise it).
    fn low_watermark_unsynced(&self) -> Option<Timestamp> {
        // a pure fold over the mirrors (no scratch): `None` when no shard
        // has subjects, or when any subject-bearing shard has not yet
        // observed stream time; the minimum watermark otherwise
        let mut low: Option<Timestamp> = None;
        let mut any_active = false;
        for m in self.meta.iter().filter(|m| m.n_subjects > 0) {
            any_active = true;
            let wm = m.watermark(self.max_delay)?;
            low = Some(match low {
                Some(l) if l <= wm => l,
                _ => wm,
            });
        }
        if any_active {
            low
        } else {
            None
        }
    }

    fn ensure_live(&self) -> Result<(), CoreError> {
        if self.finished {
            return Err(CoreError::InvalidService(
                "the service has been finished; no further ingestion".into(),
            ));
        }
        Ok(())
    }

    /// Number of partitions.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// True when ingestion runs on the persistent worker pool. The mode
    /// is chosen **once at build time** (multi-shard and multi-core) and
    /// recorded on the service — `Clone` copies it instead of re-deriving
    /// host parallelism, so benches and tests can assert which path
    /// actually ran; see [`ShardedService::set_parallel`].
    pub fn is_parallel(&self) -> bool {
        self.parallel
    }

    /// Override the execution mode: `true` spawns the persistent
    /// per-shard worker pool (even on a single-core host — an explicit
    /// override), `false` tears it down and runs shards inline at fold
    /// time. Both modes are bit-for-bit identical (shard state never
    /// moves; jobs fold back in shard order either way), so this only
    /// trades thread fan-out against channel overhead. A 1-shard service
    /// always runs inline. Drains the pipeline first.
    ///
    /// Calling `set_parallel(true)` on a service the supervisor demoted
    /// (see [`ShardedService::health`]) is an explicit *re-promotion*: it
    /// clears the degraded flag and resets the per-shard heal budgets, so
    /// the supervisor starts healing from a clean slate again.
    pub fn set_parallel(&mut self, parallel: bool) {
        self.fold_pending();
        if !parallel {
            self.workers.clear();
            self.parallel = false;
        } else if self.shards.len() > 1 {
            if self.workers.is_empty() {
                self.workers = self
                    .shards
                    .iter()
                    .map(|shard| WorkerHandle::spawn(shard.clone()))
                    .collect();
            }
            self.parallel = true;
            self.degraded = false;
            self.heals.iter_mut().for_each(|h| *h = 0);
        }
    }

    /// The *active* (non-retired) subjects, in id order.
    pub fn subjects(&self) -> Vec<SubjectId> {
        let mut ids: Vec<SubjectId> = self.routes.iter().map(|(subject, _)| subject).collect();
        ids.sort_unstable();
        ids
    }

    /// The shard an active subject's events are routed to; `None` for
    /// unknown or retired subjects.
    pub fn subject_shard(&self, subject: SubjectId) -> Option<usize> {
        self.routes.lookup(subject).map(|shard| shard as usize)
    }

    /// Budget spent so far *for one subject* on one of their patterns
    /// (sequential composition across their shard's releases, summed over
    /// epochs — spend of revoked patterns and retired subjects stays on
    /// the books).
    ///
    /// Unknown keys are explicit: `None` when `subject` never had a
    /// ledger, or when `pattern` was never a charged pattern of theirs —
    /// never a silent zero. `Some(Epsilon::ZERO)` means "registered,
    /// nothing spent yet".
    ///
    /// A draining read: in-flight rounds settle first, so the reported
    /// spend includes every release of every batch already pushed —
    /// without the drain, the pipeline's one-call lag would under-report
    /// spend that is already irrevocably committed on the shards.
    pub fn budget_spent(&mut self, subject: SubjectId, pattern: PatternId) -> Option<Epsilon> {
        self.fold_pending();
        let dense = self.control.dense_index(subject)?;
        self.ledgers.get(dense as usize)?.try_spent(&pattern)
    }

    /// Budget `subject` spent on `pattern` inside one epoch (`None` under
    /// the same unknown-key rules as [`ShardedService::budget_spent`]; a
    /// draining read for the same reason).
    pub fn budget_spent_in_epoch(
        &mut self,
        subject: SubjectId,
        pattern: PatternId,
        epoch: u64,
    ) -> Option<Epsilon> {
        self.fold_pending();
        let dense = self.control.dense_index(subject)?;
        self.ledgers
            .get(dense as usize)?
            .spent_in_epoch(&pattern, epoch)
    }

    /// Total events accepted by `push_batch` so far (dropped ones
    /// included — they were ingested, then discarded as too late).
    pub fn events_ingested(&self) -> u64 {
        self.events_ingested
    }

    /// Events that arrived later than the bounded delay and were dropped,
    /// summed over shards. A draining read: in-flight rounds settle first
    /// so the count is exact (a checkpoint-style sync point).
    pub fn dropped(&mut self) -> u64 {
        self.fold_pending();
        self.meta.iter().map(|m| m.dropped).sum()
    }

    /// Windows released so far, per shard (a draining read).
    pub fn releases_per_shard(&mut self) -> Vec<usize> {
        self.fold_pending();
        self.meta.iter().map(|m| m.released).collect()
    }

    /// The consumer queries of the epoch currently in force on the shard
    /// engines, as `(stable id, name)` pairs (a staged transition takes
    /// over at its activation window). Names are ambiguous after
    /// revocation and re-registration; the id is the stable consumer
    /// handle — key reads with [`MergedRelease::answer_for`] or sink
    /// subscriptions, not positions. A draining read: the in-force epoch
    /// is the latest activation whose boundary the (synced) release
    /// frontier has passed.
    pub fn query_names(&mut self) -> Vec<(QueryId, &str)> {
        self.fold_pending();
        let released = self.meta[0].released;
        let epoch = self
            .activations
            .iter()
            .filter(|(at, _)| *at < released)
            .map(|(_, epoch)| *epoch)
            .next_back()
            .unwrap_or(0);
        self.cores_by_epoch[epoch as usize]
            .queries()
            .iter()
            .map(|q| (q.id, q.name.as_str()))
            .collect()
    }

    /// Dedicated budget one non-boolean consumer query (argmax) spent so
    /// far across every shard release, summed over epochs. Unknown keys
    /// are explicit: `None` when `query` never carried a dedicated
    /// budget; `Some(Epsilon::ZERO)` means "registered, nothing spent
    /// yet". A draining read, like [`ShardedService::budget_spent`].
    pub fn query_budget_spent(&mut self, query: QueryId) -> Option<Epsilon> {
        self.fold_pending();
        self.query_ledger.try_spent(&query)
    }

    /// Events sitting in reorder buffers, not yet past the watermark (a
    /// draining read).
    pub fn buffered(&mut self) -> usize {
        self.fold_pending();
        self.meta.iter().map(|m| m.buffered).sum()
    }
}

/// The splitmix64 finalizer: the service's stable hash for shard routing
/// and seed derivation (also reused by [`crate::supervision`] to derive
/// seeded fault plans).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdp_stream::EventType;

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    fn e(ty: u32, ms: i64) -> Event {
        Event::new(t(ty), Timestamp::from_millis(ms))
    }

    fn ke(subject: u64, ty: u32, ms: i64) -> KeyedEvent {
        KeyedEvent::new(SubjectId(subject), e(ty, ms))
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn config(n_shards: usize) -> ServiceConfig {
        ServiceConfig {
            n_shards,
            n_types: 4,
            alpha: Alpha::HALF,
            ppm: PpmKind::Uniform { eps: eps(1.0) },
            streaming: StreamingConfig::tumbling(TimeDelta::from_millis(10)),
            max_delay: TimeDelta::from_millis(5),
            seed: 7,
            history_window: 16,
        }
    }

    fn builder(n_shards: usize) -> ServiceBuilder {
        let mut b = ServiceBuilder::new(config(n_shards)).unwrap();
        b.register_private_pattern(SubjectId(1), Pattern::seq("p1", vec![t(0), t(1)]).unwrap());
        b.register_private_pattern(SubjectId(2), Pattern::single("p2", t(3)));
        b.register_subject(SubjectId(3));
        b.register_target_query("t2?", Pattern::single("t2", t(2)));
        b
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(matches!(
            ServiceBuilder::new(config(0)),
            Err(CoreError::InvalidService(_))
        ));
    }

    #[test]
    fn rng_count_must_match_shards() {
        let b = builder(2);
        assert!(matches!(
            b.build_with_rngs(vec![DpRng::seed_from(1)]),
            Err(CoreError::InvalidService(_))
        ));
    }

    #[test]
    fn single_shard_never_spawns_workers() {
        let mut svc = builder(1).build().unwrap();
        assert!(!svc.is_parallel());
        svc.set_parallel(true);
        assert!(!svc.is_parallel(), "1-shard services always run inline");
    }

    #[test]
    fn parallel_workers_match_inline_bit_for_bit() {
        // the same batches through the worker pool and the inline path
        // must produce identical releases, merges and ledgers
        let batches: Vec<Vec<KeyedEvent>> = vec![
            vec![ke(1, 0, 5), ke(2, 3, 6), ke(3, 2, 7)],
            vec![ke(1, 1, 30), ke(3, 2, 31)],
            vec![ke(2, 3, 64), ke(1, 0, 66)],
        ];
        let mut parallel = builder(3).build().unwrap();
        parallel.set_parallel(true);
        assert!(parallel.is_parallel());
        let mut inline = builder(3).build().unwrap();
        inline.set_parallel(false);
        assert!(!inline.is_parallel());
        for batch in &batches {
            let a = parallel.push_batch(batch.clone()).unwrap();
            let b = inline.push_batch(batch.clone()).unwrap();
            assert_eq!(a, b);
        }
        let a = parallel
            .advance_watermark(Timestamp::from_millis(90))
            .unwrap();
        let b = inline
            .advance_watermark(Timestamp::from_millis(90))
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(parallel.finish().unwrap(), inline.finish().unwrap());
        for subject in inline.subjects() {
            for pid in 0..3u32 {
                assert_eq!(
                    parallel.budget_spent(subject, pdp_cep::PatternId(pid)),
                    inline.budget_spent(subject, pdp_cep::PatternId(pid)),
                );
            }
        }
    }

    #[test]
    fn unknown_subjects_are_rejected() {
        let mut svc = builder(2).build().unwrap();
        let err = svc.push_batch(vec![ke(99, 0, 1)]).unwrap_err();
        assert!(matches!(err, CoreError::UnknownSubject(99)));
    }

    #[test]
    fn rejected_batches_leave_the_service_untouched() {
        // an unknown subject *after* events that would close windows must
        // not half-apply the batch: no ingestion, no releases, no spend
        let mut svc = builder(1).build().unwrap();
        let poisoned = vec![ke(1, 0, 1), ke(1, 1, 500), ke(99, 0, 501)];
        assert!(matches!(
            svc.push_batch(poisoned.clone()),
            Err(CoreError::UnknownSubject(99))
        ));
        assert_eq!(svc.events_ingested(), 0);
        assert_eq!(svc.buffered(), 0);
        assert_eq!(svc.releases_per_shard(), vec![0]);
        // the same batch without the poison pill applies normally (its
        // releases surface at the next sync point — the pipeline lag)
        svc.push_batch(poisoned[..2].to_vec()).unwrap();
        let out = svc.finish().unwrap();
        assert!(!out.shard_releases.is_empty());
        assert_eq!(svc.events_ingested(), 2);
    }

    #[test]
    fn dead_worker_surfaces_which_shard_died() {
        let mut svc = builder(2).build().unwrap();
        svc.set_parallel(true); // force workers even on a 1-core host
        assert!(svc.is_parallel());
        // unsupervised: a scripted kill still fails fast with a typed error
        svc.inject_faults(FaultPlan::new().kill_worker(1, 1));
        let err = svc.push_batch(vec![ke(1, 0, 5), ke(2, 3, 6)]).unwrap_err();
        assert_eq!(err, CoreError::ShardWorker { shard: 1 });
        assert_eq!(svc.faults_remaining(), 0);
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let svc = builder(4).build().unwrap();
        for subject in svc.subjects() {
            let s = svc.subject_shard(subject).unwrap();
            assert_eq!(s, ShardedService::shard_for(subject, 4));
            assert!(s < 4);
        }
        assert_eq!(
            svc.subjects(),
            vec![SubjectId(1), SubjectId(2), SubjectId(3)]
        );
    }

    #[test]
    fn shard_seed_keeps_base_for_shard_zero() {
        assert_eq!(ShardedService::shard_seed(42, 0), 42);
        assert_ne!(ShardedService::shard_seed(42, 1), 42);
        assert_ne!(
            ShardedService::shard_seed(42, 1),
            ShardedService::shard_seed(42, 2)
        );
    }

    #[test]
    fn late_events_are_dropped_and_counted() {
        let mut svc = builder(1).build().unwrap();
        svc.push_batch(vec![ke(1, 0, 100)]).unwrap(); // watermark 95
        svc.push_batch(vec![ke(1, 1, 50)]).unwrap(); // too late
        assert_eq!(svc.dropped(), 1);
        assert_eq!(svc.events_ingested(), 2);
    }

    #[test]
    fn quiet_shards_release_via_global_watermark() {
        // subjects 1 and 2 land on different shards of a 4-way service,
        // leaving at least one shard with no subjects at all
        let svc = builder(4).build().unwrap();
        let s1 = svc.subject_shard(SubjectId(1)).unwrap();
        let s2 = svc.subject_shard(SubjectId(2)).unwrap();
        assert_ne!(s1, s2, "fixture subjects must split across shards");

        let mut svc = builder(4).build().unwrap();
        // only subject 1 reports: subject 2's shard is quiet and holds the
        // global watermark back (subjectless shards never do — they can
        // never receive events)
        svc.push_batch(vec![ke(1, 0, 100)]).unwrap();
        assert_eq!(svc.low_watermark(), None, "quiet tenant shard holds it");
        // a heartbeat covers the quiet shard, and *every* shard releases
        let out = svc.advance_watermark(Timestamp::from_millis(100)).unwrap();
        assert_eq!(svc.low_watermark(), Some(Timestamp::from_millis(95)));
        // windows 0..=8 closed on *every* shard (95ms watermark, 10ms windows)
        assert_eq!(out.merged.len(), 9);
        let per_shard = svc.releases_per_shard();
        assert!(per_shard.iter().all(|&r| r == 9), "{per_shard:?}");
    }

    #[test]
    fn merged_answers_are_disjunctions() {
        let mut svc = builder(2).build().unwrap();
        // subject 3 emits the target type 2; nothing flips it (uniform PPM
        // touches only private-pattern types 0, 1, 3)
        svc.push_batch(vec![ke(3, 2, 5)]).unwrap();
        let out = svc.advance_watermark(Timestamp::from_millis(40)).unwrap();
        assert!(!out.merged.is_empty());
        let w0 = &out.merged[0];
        assert_eq!(w0.index, 0);
        assert!(w0.answers_any[0], "target type present in population");
        assert_eq!(w0.positive_shards[0], 1, "exactly one shard saw it");
        // merged rows arrive in index order
        for (k, m) in out.merged.iter().enumerate() {
            assert_eq!(m.index, k);
        }
    }

    #[test]
    fn batch_releases_group_by_shard_in_order() {
        let mut svc = builder(2).build().unwrap();
        svc.push_batch(vec![ke(1, 0, 5), ke(2, 3, 5), ke(3, 2, 5)])
            .unwrap();
        let out = svc.advance_watermark(Timestamp::from_millis(60)).unwrap();
        let shards: Vec<usize> = out.shard_releases.iter().map(|sr| sr.shard).collect();
        let mut sorted = shards.clone();
        sorted.sort_unstable();
        assert_eq!(shards, sorted, "shard-major ordering: {shards:?}");
        // within a shard, indexes ascend
        for shard in 0..svc.n_shards() {
            let idx: Vec<usize> = out
                .shard_releases
                .iter()
                .filter(|sr| sr.shard == shard)
                .map(|sr| sr.release.index)
                .collect();
            let mut want = idx.clone();
            want.sort_unstable();
            assert_eq!(idx, want);
        }
    }

    #[test]
    fn clone_replays_identically() {
        let mut svc = builder(2).build().unwrap();
        svc.push_batch(vec![ke(1, 0, 5), ke(2, 3, 6)]).unwrap();
        svc.sync().unwrap();
        let mut copy = svc.clone();
        let a = svc.advance_watermark(Timestamp::from_millis(80)).unwrap();
        let b = copy.advance_watermark(Timestamp::from_millis(80)).unwrap();
        assert_eq!(a, b, "clone carries RNG and merge state");
        assert_eq!(svc.finish().unwrap(), copy.finish().unwrap());
    }

    /// Regression: cloning a forced-parallel service with a round still in
    /// flight used to panic ("clone a ShardedService while a batch is in
    /// flight"). `try_clone` settles the pipeline first and must succeed
    /// exactly where `clone` would have aborted the process.
    #[test]
    fn try_clone_succeeds_with_round_in_flight() {
        let mut svc = builder(2).build().unwrap();
        svc.set_parallel(true);
        svc.push_batch(vec![ke(1, 0, 5), ke(2, 3, 6)]).unwrap();
        // no sync(): the round submitted above is still in flight
        let mut copy = svc.try_clone().expect("try_clone settles the pipeline");
        let a = svc.advance_watermark(Timestamp::from_millis(80)).unwrap();
        let b = copy.advance_watermark(Timestamp::from_millis(80)).unwrap();
        assert_eq!(a, b, "try_clone preserves replay equivalence");
        assert_eq!(svc.finish().unwrap(), copy.finish().unwrap());
    }

    #[test]
    fn per_subject_ledgers_charge_only_their_patterns() {
        let mut b = ServiceBuilder::new(config(1)).unwrap();
        let p1 =
            b.register_private_pattern(SubjectId(1), Pattern::seq("p1", vec![t(0), t(1)]).unwrap());
        let p2 = b.register_private_pattern(SubjectId(2), Pattern::single("p2", t(3)));
        b.register_target_query("t2?", Pattern::single("t2", t(2)));
        let mut svc = b.build().unwrap();
        svc.push_batch(vec![ke(1, 0, 5)]).unwrap();
        let out = svc.advance_watermark(Timestamp::from_millis(35)).unwrap();
        let released: usize = out.merged.len();
        assert!(released >= 3);
        // both subjects sit on the single shard: each release charges each
        // subject their own pattern's full ε = 1.0 — and never the other's
        let spent1 = svc.budget_spent(SubjectId(1), p1).unwrap().value();
        let spent2 = svc.budget_spent(SubjectId(2), p2).unwrap().value();
        assert!((spent1 - released as f64).abs() < 1e-12, "{spent1}");
        assert!((spent2 - released as f64).abs() < 1e-12, "{spent2}");
        // the other tenant's pattern is an *unknown key* for this ledger,
        // not a silent zero
        assert_eq!(svc.budget_spent(SubjectId(1), p2), None);
        assert_eq!(svc.budget_spent(SubjectId(2), p1), None);
        // an unknown subject is unknown too
        assert_eq!(svc.budget_spent(SubjectId(99), p1), None);
    }

    #[test]
    fn finish_drains_buffers_and_seals_the_service() {
        let mut svc = builder(1).build().unwrap();
        svc.push_batch(vec![ke(1, 0, 3), ke(1, 1, 4)]).unwrap();
        assert!(svc.buffered() > 0, "events await the watermark");
        let out = svc.finish().unwrap();
        assert_eq!(svc.buffered(), 0);
        assert_eq!(out.merged.len(), 1, "open window closed at finish");
        assert!(matches!(
            svc.push_batch(vec![ke(1, 0, 50)]),
            Err(CoreError::InvalidService(_))
        ));
        assert!(matches!(svc.finish(), Err(CoreError::InvalidService(_))));
    }

    #[test]
    fn begin_epoch_without_staged_commands_is_none() {
        let mut svc = builder(2).build().unwrap();
        assert!(svc.begin_epoch().unwrap().is_none());
        assert_eq!(svc.epoch(), 0);
    }

    #[test]
    fn new_subject_becomes_routable_at_the_next_epoch() {
        let mut svc = builder(2).build().unwrap();
        // staged but not yet active: events still rejected
        svc.register_subject(SubjectId(9));
        assert!(matches!(
            svc.push_batch(vec![ke(9, 0, 1)]),
            Err(CoreError::UnknownSubject(9))
        ));
        let transition = svc.begin_epoch().unwrap().expect("staged");
        assert_eq!(transition.plan.epoch, 1);
        assert_eq!(transition.activation_index, 0, "nothing released yet");
        svc.push_batch(vec![ke(9, 0, 1)]).unwrap();
        assert!(svc.subject_shard(SubjectId(9)).is_some());
    }

    #[test]
    fn retired_subjects_are_rejected_and_spend_freezes() {
        let mut svc = builder(1).build().unwrap();
        svc.push_batch(vec![ke(2, 3, 5)]).unwrap();
        let out = svc.advance_watermark(Timestamp::from_millis(40)).unwrap();
        let released_before = out.merged.len();
        assert!(released_before > 0);
        let p2 = pdp_cep::PatternId(1); // subject 2's single-type pattern
        let spent_before = svc.budget_spent(SubjectId(2), p2).unwrap();
        assert!(spent_before.value() > 0.0);

        svc.retire_subject(SubjectId(2)).unwrap();
        svc.begin_epoch().unwrap().expect("staged");
        assert!(svc.subject_shard(SubjectId(2)).is_none());
        assert!(matches!(
            svc.push_batch(vec![ke(2, 3, 50)]),
            Err(CoreError::UnknownSubject(2))
        ));
        // further releases charge subject 2 nothing; spend stays queryable
        svc.advance_watermark(Timestamp::from_millis(100)).unwrap();
        assert_eq!(svc.budget_spent(SubjectId(2), p2), Some(spent_before));
        assert!(!svc.subjects().contains(&SubjectId(2)));
    }

    #[test]
    fn query_churn_changes_answer_shape_at_the_boundary() {
        let mut svc = builder(1).build().unwrap();
        svc.push_batch(vec![ke(3, 2, 5)]).unwrap();
        let out = svc.advance_watermark(Timestamp::from_millis(25)).unwrap();
        assert!(out.merged.iter().all(|m| m.answers_any.len() == 1));
        assert_eq!(svc.query_names(), vec![(QueryId(0), "t2?")]);

        let (q1, _) = svc.add_consumer_query("t3?", Pattern::single("t3", t(3)));
        let transition = svc.begin_epoch().unwrap().expect("staged");
        let boundary = transition.activation_index;
        let out = svc.advance_watermark(Timestamp::from_millis(65)).unwrap();
        for m in &out.merged {
            let expect = if m.index < boundary { 1 } else { 2 };
            assert_eq!(m.answers_any.len(), expect, "window {}", m.index);
            assert_eq!(m.epoch, u64::from(m.index >= boundary));
        }
        // and the new query can be removed again
        svc.remove_consumer_query(q1).unwrap();
        svc.begin_epoch().unwrap().expect("staged");
        let out = svc.finish().unwrap();
        assert!(out
            .merged
            .iter()
            .all(|m| m.epoch != 2 || m.answers_any.len() == 1));
    }

    #[test]
    fn shutdown_equals_finish_plus_wal_fsync() {
        // shutdown on an open service delivers exactly what finish would
        let mut reference = builder(2).build().unwrap();
        let batch = vec![ke(1, 0, 2), ke(2, 3, 5), ke(3, 2, 12)];
        reference.push_batch(batch.clone()).unwrap();
        let finished = reference.finish().unwrap();

        let dir = std::env::temp_dir().join(format!("pdp_shutdown_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("shutdown.wal");
        let mut svc = builder(2).build().unwrap();
        svc.attach_wal(WalWriter::create(&wal_path).unwrap());
        svc.push_batch(batch).unwrap();
        let closed = svc.shutdown().unwrap();
        assert_eq!(closed, finished, "shutdown delivers what finish would");
        // sealed: further ingestion is rejected, a second shutdown is fine
        assert!(svc.push_batch(vec![ke(1, 0, 40)]).is_err());
        let again = svc.shutdown().unwrap();
        assert!(again.merged.is_empty() && again.shard_releases.is_empty());
        // the log survived the fsync barrier and ends with Finish
        let wal = svc.detach_wal().unwrap();
        drop(wal);
        let records = crate::durability::read_wal_from(&wal_path, 0).unwrap();
        assert!(matches!(records.last(), Some(WalRecord::Finish)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_after_finish_is_a_noop_drain() {
        let mut svc = builder(1).build().unwrap();
        svc.push_batch(vec![ke(1, 0, 2)]).unwrap();
        let finished = svc.finish().unwrap();
        assert!(!finished.merged.is_empty());
        let closed = svc.shutdown().unwrap();
        assert!(closed.merged.is_empty(), "everything was already delivered");
    }

    #[test]
    fn merged_releases_carry_the_population_union() {
        let mut svc = builder(2).build().unwrap();
        svc.push_batch(vec![ke(1, 0, 2), ke(2, 3, 5), ke(3, 2, 5)])
            .unwrap();
        let out = svc.advance_watermark(Timestamp::from_millis(25)).unwrap();
        let w0 = &out.merged[0];
        // every shard's protected bits OR into the population view; the
        // uniform PPM only ever flips private types (0, 1, 3), so type 2
        // is reported exactly
        assert!(w0.protected_any.get(t(2)));
        let per_shard_union = out
            .shard_releases
            .iter()
            .filter(|sr| sr.release.index == 0)
            .fold(pdp_stream::IndicatorVector::empty(4), |mut acc, sr| {
                acc.union_with(&sr.release.protected);
                acc
            });
        assert_eq!(w0.protected_any, per_shard_union);
    }

    #[test]
    fn out_of_order_within_delay_is_reordered() {
        let mut svc = builder(1).build().unwrap();
        // 4 arrives after 7 but within the 5ms bound → reordered, not lost
        svc.push_batch(vec![ke(1, 0, 7), ke(1, 1, 4), ke(1, 2, 9)])
            .unwrap();
        let out = svc.finish().unwrap();
        assert_eq!(svc.dropped(), 0);
        assert_eq!(out.merged.len(), 1);
        let release = &out.shard_releases.last().unwrap().release;
        // all three types present in window 0 — the late event made it in
        assert!(release.protected.get(t(2)));
        // one detection flag per registered pattern (p1, p2, the target),
        // sealed behind the trusted boundary
        assert_eq!(release.audit().len(), 3);
    }
}
