//! The sharded multi-tenant service layer.
//!
//! The paper's model (§III-A, Fig. 1) is one trusted engine serving *many*
//! data subjects and consumers over an unbounded stream. A production-scale
//! deployment cannot run that as a single single-threaded
//! [`StreamingEngine`]: ingestion arrives in batches, events arrive late,
//! and the event volume of millions of subjects has to be spread over
//! independent partitions. [`ShardedService`] is that deployment shape:
//!
//! * **setup phase** ([`ServiceBuilder`]): data subjects register under a
//!   [`SubjectId`] and declare their private patterns; data consumers
//!   register named target queries. One protection pipeline is built over
//!   the union of all registrations, exactly as in
//!   [`TrustedEngine::setup`](crate::engine::TrustedEngine::setup);
//! * **sharding**: every subject is hash-assigned to one of `n_shards`
//!   partitions ([`ShardedService::shard_for`]), so a subject's whole
//!   stream — and therefore every window of it — is always processed by
//!   the same shard. Each shard runs its own [`OnlineCore`]-backed
//!   [`StreamingEngine`] with an independent [`DpRng`];
//! * **batched out-of-order ingestion** ([`ShardedService::push_batch`]):
//!   events are keyed by subject, routed to their shard's
//!   [`ReorderBuffer`], and only enter the shard engine once the shard
//!   watermark passes them; events later than the bounded delay are
//!   counted and dropped. After every batch the **global low watermark**
//!   (the minimum across shard buffers) drives
//!   [`StreamingEngine::advance_watermark`] on every shard, so quiet
//!   partitions keep releasing (protected, possibly flipped-present)
//!   windows and all shards stay on one aligned window timeline;
//! * **merged releases**: per-shard [`WindowRelease`]s are queued and
//!   merged once every shard has released a given window index
//!   ([`MergedRelease`]) — the population-level consumer answer is the
//!   disjunction over shards, with the per-query positive-shard count kept
//!   for aggregate consumers;
//! * **per-subject accounting**: each shard release charges every subject
//!   assigned to that shard for their own registered patterns in a
//!   per-subject [`BudgetLedger`] — the pattern-level ε-DP guarantee
//!   (Thm. 1) is per subject and must hold regardless of how the stream is
//!   partitioned.
//!
//! Correctness is anchored by equivalence, not by re-proof: a 1-shard
//! service reproduces [`StreamingEngine`] bit-for-bit under a seeded
//! [`DpRng`], and an N-shard service over a partitioned stream matches N
//! independent engines (see `tests/sharded_equivalence.rs`).
//!
//! [`ReorderBuffer`]: pdp_stream::ReorderBuffer

use std::collections::{BTreeMap, HashMap, VecDeque};

use pdp_cep::{Pattern, PatternId, QueryId};
use pdp_dp::{BudgetLedger, DpRng, Epsilon};
use pdp_metrics::Alpha;
use pdp_stream::{Event, ReorderBuffer, TimeDelta, Timestamp, WindowedIndicators};

use crate::engine::{PpmKind, TrustedEngine, TrustedEngineConfig};
use crate::error::CoreError;
use crate::streaming::{StreamingConfig, StreamingEngine, WindowRelease};

/// Identifies one data subject (tenant) of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubjectId(pub u64);

impl std::fmt::Display for SubjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "subject#{}", self.0)
    }
}

/// An event keyed by the data subject that emitted it — the unit of
/// ingestion for the sharded service.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedEvent {
    /// The emitting data subject; determines the shard.
    pub subject: SubjectId,
    /// The event itself.
    pub event: Event,
}

impl KeyedEvent {
    /// Convenience constructor.
    pub fn new(subject: SubjectId, event: Event) -> Self {
        KeyedEvent { subject, event }
    }
}

/// Construction parameters of a [`ShardedService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of partitions (≥ 1).
    pub n_shards: usize,
    /// Size of the event-type universe.
    pub n_types: usize,
    /// The consumers' quality weight (Eq. 3).
    pub alpha: Alpha,
    /// The pattern-level PPM every shard applies.
    pub ppm: PpmKind,
    /// Window length and detection semantics of every shard engine.
    pub streaming: StreamingConfig,
    /// Bounded lateness tolerated by the per-shard reorder buffers.
    pub max_delay: TimeDelta,
    /// Base seed; shard `i` draws from [`ShardedService::shard_seed`]`(seed, i)`.
    pub seed: u64,
}

/// One shard's release, tagged with its partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRelease {
    /// The partition that released the window.
    pub shard: usize,
    /// The protected release itself.
    pub release: WindowRelease,
}

/// One window index merged across every shard: the population-level view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedRelease {
    /// Window index (shared by all shards — they run one aligned timeline).
    pub index: usize,
    /// Start of the window.
    pub start: Timestamp,
    /// Per query (in [`QueryId`] order): true iff *any* shard's protected
    /// view answered true — "does the target pattern occur anywhere in the
    /// population?".
    pub answers_any: Vec<bool>,
    /// Per query: how many shards answered true (the aggregate consumers'
    /// counting view).
    pub positive_shards: Vec<usize>,
}

/// What one ingestion call produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOutput {
    /// Every window released by any shard, in release order.
    pub shard_releases: Vec<ShardRelease>,
    /// Window indexes completed by *all* shards since the last call,
    /// merged (in index order).
    pub merged: Vec<MergedRelease>,
}

impl BatchOutput {
    fn absorb(&mut self, shard: usize, releases: Vec<WindowRelease>) -> Vec<WindowRelease> {
        self.shard_releases.extend(
            releases
                .iter()
                .cloned()
                .map(|release| ShardRelease { shard, release }),
        );
        releases
    }
}

/// Setup phase of the sharded service (§III-A): subject and consumer
/// registration, then [`ServiceBuilder::build`] to go online.
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    config: ServiceConfig,
    engine: TrustedEngine,
    /// Registration order and per-subject private patterns. `BTreeMap` so
    /// iteration (and thus the charging plan) is deterministic.
    subjects: BTreeMap<SubjectId, Vec<PatternId>>,
}

impl ServiceBuilder {
    /// Start the setup phase.
    pub fn new(config: ServiceConfig) -> Result<Self, CoreError> {
        if config.n_shards == 0 {
            return Err(CoreError::InvalidService(
                "a service needs at least one shard".into(),
            ));
        }
        let engine = TrustedEngine::new(TrustedEngineConfig {
            n_types: config.n_types,
            alpha: config.alpha,
            ppm: config.ppm.clone(),
        });
        Ok(ServiceBuilder {
            config,
            engine,
            subjects: BTreeMap::new(),
        })
    }

    /// Register a data subject with no private patterns (a tenant whose
    /// stream needs no protection but must still be routable).
    pub fn register_subject(&mut self, subject: SubjectId) -> &mut Self {
        self.subjects.entry(subject).or_default();
        self
    }

    /// Data subject `subject`: declare a private pattern to protect.
    pub fn register_private_pattern(&mut self, subject: SubjectId, pattern: Pattern) -> PatternId {
        let id = self.engine.register_private_pattern(pattern);
        self.subjects.entry(subject).or_default().push(id);
        id
    }

    /// Data consumer: declare a named target-pattern query.
    pub fn register_target_query(&mut self, name: &str, pattern: Pattern) -> (QueryId, PatternId) {
        self.engine.register_target_query(name, pattern)
    }

    /// Register a pattern that is neither private nor queried (kept for
    /// [`PatternId`] parity with an external registry, e.g. a workload).
    pub fn register_pattern(&mut self, pattern: Pattern) -> PatternId {
        self.engine.register_pattern(pattern)
    }

    /// Grant access to historical data (required by the adaptive PPM).
    pub fn provide_history(&mut self, windows: WindowedIndicators) {
        self.engine.provide_history(windows);
    }

    /// Complete setup and go online, deriving each shard's [`DpRng`] from
    /// [`ServiceConfig::seed`] via [`ShardedService::shard_seed`].
    pub fn build(self) -> Result<ShardedService, CoreError> {
        let rngs = (0..self.config.n_shards)
            .map(|s| DpRng::seed_from(ShardedService::shard_seed(self.config.seed, s)))
            .collect();
        self.build_with_rngs(rngs)
    }

    /// Complete setup with explicit per-shard generators (one per shard).
    ///
    /// This is how a replay harness hands the service an already-forked
    /// trial RNG so a 1-shard run reproduces a plain [`StreamingEngine`]
    /// trial bit-for-bit.
    pub fn build_with_rngs(mut self, rngs: Vec<DpRng>) -> Result<ShardedService, CoreError> {
        if rngs.len() != self.config.n_shards {
            return Err(CoreError::InvalidService(format!(
                "{} shard rngs provided for {} shards",
                rngs.len(),
                self.config.n_shards
            )));
        }
        self.engine.setup()?;
        let n_shards = self.config.n_shards;
        let assignment: HashMap<SubjectId, usize> = self
            .subjects
            .keys()
            .map(|&s| (s, ShardedService::shard_for(s, n_shards)))
            .collect();

        let mut shards = Vec::with_capacity(n_shards);
        for rng in rngs {
            let mut engine = StreamingEngine::from_engine(&self.engine, self.config.streaming)?;
            // Pin every shard to the same window origin so all shards run
            // one aligned timeline (required by the merge path, and by the
            // global watermark which may reach a shard before its first
            // event). Closes nothing and draws no randomness.
            engine.advance_watermark(Timestamp::ZERO, &mut DpRng::seed_from(0))?;
            shards.push(Shard {
                buffer: ReorderBuffer::new(self.config.max_delay),
                engine,
                rng,
                frontier: Timestamp::ZERO,
                charges: Vec::new(),
                n_subjects: 0,
            });
        }
        for &shard in assignment.values() {
            shards[shard].n_subjects += 1;
        }

        // Per-release charging plan: each release of shard `s` charges
        // every subject on `s` for each of *their* patterns' per-release
        // budgets (sequential composition across releases, per subject).
        let budgets: HashMap<PatternId, Epsilon> = shards[0]
            .engine
            .core()
            .pipeline()
            .budgets()
            .into_iter()
            .collect();
        for (&subject, patterns) in &self.subjects {
            let shard = assignment[&subject];
            for pid in patterns {
                if let Some(&eps) = budgets.get(pid) {
                    shards[shard].charges.push((subject, *pid, eps));
                }
            }
        }

        let query_names: Vec<String> = shards[0]
            .engine
            .query_names()
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let ledgers = self
            .subjects
            .keys()
            .map(|&s| (s, BudgetLedger::unlimited()))
            .collect();
        Ok(ShardedService {
            shards,
            assignment,
            ledgers,
            pending: vec![VecDeque::new(); n_shards],
            query_names,
            events_ingested: 0,
            finished: false,
        })
    }
}

#[derive(Debug, Clone)]
struct Shard {
    buffer: ReorderBuffer,
    engine: StreamingEngine,
    rng: DpRng,
    /// The furthest point in stream time this shard's engine has seen
    /// (event pushes and watermark advances); the global watermark is only
    /// applied when it moves a shard forward.
    frontier: Timestamp,
    /// `(subject, pattern, per-release ε)` to charge on every release.
    charges: Vec<(SubjectId, PatternId, Epsilon)>,
    /// Subjects routed to this shard. A shard with none can never receive
    /// events, so it must not hold the global low watermark back.
    n_subjects: usize,
}

/// The online sharded multi-tenant service. Built by [`ServiceBuilder`].
#[derive(Debug, Clone)]
pub struct ShardedService {
    shards: Vec<Shard>,
    assignment: HashMap<SubjectId, usize>,
    ledgers: HashMap<SubjectId, BudgetLedger<PatternId>>,
    /// Per-shard queues of releases not yet merged across all shards.
    pending: Vec<VecDeque<WindowRelease>>,
    query_names: Vec<String>,
    events_ingested: u64,
    finished: bool,
}

impl ShardedService {
    /// The deterministic subject → shard assignment (splitmix64 of the
    /// subject id, reduced modulo `n_shards`). Stable across runs and Rust
    /// versions — partition equivalence tests depend on it.
    pub fn shard_for(subject: SubjectId, n_shards: usize) -> usize {
        assert!(n_shards > 0, "shard_for needs at least one shard");
        (splitmix64(subject.0) % n_shards as u64) as usize
    }

    /// The seed shard `shard` derives its [`DpRng`] from.
    ///
    /// Shard 0 keeps the base seed unchanged so a 1-shard service is
    /// bit-for-bit a [`StreamingEngine`] driven with
    /// `DpRng::seed_from(base)`; higher shards mix the shard index in.
    pub fn shard_seed(base: u64, shard: usize) -> u64 {
        if shard == 0 {
            base
        } else {
            base ^ splitmix64(shard as u64)
        }
    }

    /// Ingest one batch of keyed events, in arrival order. Events may be
    /// out of temporal order up to the configured bounded delay; later
    /// ones are dropped (see [`ShardedService::dropped`]). Returns every
    /// release the batch caused, plus the window indexes newly completed
    /// by all shards.
    ///
    /// The call is atomic with respect to registration: every subject in
    /// the batch is resolved *before* any event is ingested, so an
    /// [`CoreError::UnknownSubject`] rejection leaves the service — and
    /// the releases a partial batch would have produced — untouched.
    pub fn push_batch(&mut self, batch: &[KeyedEvent]) -> Result<BatchOutput, CoreError> {
        self.ensure_live()?;
        let routes: Vec<usize> = batch
            .iter()
            .map(|keyed| {
                self.assignment
                    .get(&keyed.subject)
                    .copied()
                    .ok_or(CoreError::UnknownSubject(keyed.subject.0))
            })
            .collect::<Result<_, _>>()?;
        let mut out = BatchOutput::default();
        for (keyed, shard_idx) in batch.iter().zip(routes) {
            let ready = self.shards[shard_idx].buffer.push(keyed.event.clone());
            self.feed_shard(shard_idx, ready, &mut out)?;
            self.events_ingested += 1;
        }
        self.advance_to_low_watermark(&mut out)?;
        self.drain_merged(&mut out);
        Ok(out)
    }

    /// Heartbeat: behave as if every source had just been observed at
    /// `ts` — each shard buffer's watermark advances to `ts − max_delay`
    /// (events up to `max_delay` late are still accepted afterwards), and
    /// the global low watermark then drives every shard engine forward,
    /// releasing quiet windows.
    pub fn advance_watermark(&mut self, ts: Timestamp) -> Result<BatchOutput, CoreError> {
        self.ensure_live()?;
        let mut out = BatchOutput::default();
        for shard_idx in 0..self.shards.len() {
            let ready = self.shards[shard_idx].buffer.heartbeat(ts);
            self.feed_shard(shard_idx, ready, &mut out)?;
        }
        self.advance_to_low_watermark(&mut out)?;
        self.drain_merged(&mut out);
        Ok(out)
    }

    /// End of stream: drain every reorder buffer into its engine, align
    /// every shard on one final frontier (the furthest any shard reached —
    /// the stream ends at the same instant for every tenant, so the last
    /// windows merge too), close the open windows, and merge. The service
    /// rejects ingestion afterwards.
    pub fn finish(&mut self) -> Result<BatchOutput, CoreError> {
        self.ensure_live()?;
        self.finished = true;
        let mut out = BatchOutput::default();
        for shard_idx in 0..self.shards.len() {
            let remaining = self.shards[shard_idx].buffer.flush();
            self.feed_shard(shard_idx, remaining, &mut out)?;
        }
        let end = self
            .shards
            .iter()
            .map(|s| s.frontier)
            .max()
            .expect("n_shards >= 1");
        for shard_idx in 0..self.shards.len() {
            if end > self.shards[shard_idx].frontier {
                let shard = &mut self.shards[shard_idx];
                let releases = shard.engine.advance_watermark(end, &mut shard.rng)?;
                shard.frontier = end;
                self.record(shard_idx, releases, &mut out);
            }
            let shard = &mut self.shards[shard_idx];
            let last = shard.engine.finish(&mut shard.rng)?;
            if let Some(last) = last {
                self.record(shard_idx, vec![last], &mut out);
            }
        }
        self.drain_merged(&mut out);
        Ok(out)
    }

    /// Push already-ordered events a shard's buffer released into the
    /// shard engine, collecting and accounting the releases.
    fn feed_shard(
        &mut self,
        shard_idx: usize,
        events: Vec<Event>,
        out: &mut BatchOutput,
    ) -> Result<(), CoreError> {
        for event in events {
            let shard = &mut self.shards[shard_idx];
            let releases = shard.engine.push(&event, &mut shard.rng)?;
            shard.frontier = shard.frontier.max(event.ts);
            self.record(shard_idx, releases, out);
        }
        Ok(())
    }

    /// Book `releases` of one shard everywhere they matter: the caller's
    /// output, the per-subject ledgers, and the merge queues.
    fn record(&mut self, shard_idx: usize, releases: Vec<WindowRelease>, out: &mut BatchOutput) {
        let released = out.absorb(shard_idx, releases);
        self.account(shard_idx, &released);
        self.pending[shard_idx].extend(released);
    }

    /// The global low watermark: the minimum of the shard buffers'
    /// watermarks, or `None` until every shard that can receive events has
    /// observed stream time. Shards with no registered subjects can never
    /// receive events and are excluded (they are advanced *by* the global
    /// watermark instead of contributing to it); a service with no
    /// subjects at all has no watermark.
    pub fn low_watermark(&self) -> Option<Timestamp> {
        let active: Vec<Option<Timestamp>> = self
            .shards
            .iter()
            .filter(|s| s.n_subjects > 0)
            .map(|s| s.buffer.watermark())
            .collect();
        if active.is_empty() {
            return None;
        }
        active
            .into_iter()
            .collect::<Option<Vec<_>>>()
            .and_then(|wms| wms.into_iter().min())
    }

    fn advance_to_low_watermark(&mut self, out: &mut BatchOutput) -> Result<(), CoreError> {
        let Some(low) = self.low_watermark() else {
            return Ok(());
        };
        for shard_idx in 0..self.shards.len() {
            if low > self.shards[shard_idx].frontier {
                let shard = &mut self.shards[shard_idx];
                let releases = shard.engine.advance_watermark(low, &mut shard.rng)?;
                shard.frontier = low;
                self.record(shard_idx, releases, out);
            }
        }
        Ok(())
    }

    /// Charge this shard's subjects for `releases` (their own patterns
    /// only), per release.
    fn account(&mut self, shard_idx: usize, releases: &[WindowRelease]) {
        if releases.is_empty() {
            return;
        }
        for (subject, pid, eps) in &self.shards[shard_idx].charges {
            let ledger = self
                .ledgers
                .get_mut(subject)
                .expect("every registered subject has a ledger");
            for _ in releases {
                ledger
                    .spend(*pid, *eps)
                    .expect("per-subject ledgers are unlimited");
            }
        }
    }

    /// Pop every window index all shards have released, merging answers.
    fn drain_merged(&mut self, out: &mut BatchOutput) {
        while self.pending.iter().all(|q| !q.is_empty()) {
            let rows: Vec<WindowRelease> = self
                .pending
                .iter_mut()
                .map(|q| q.pop_front().expect("checked non-empty"))
                .collect();
            let first = &rows[0];
            debug_assert!(
                rows.iter()
                    .all(|r| r.index == first.index && r.start == first.start),
                "shards share one window timeline"
            );
            let n_queries = self.query_names.len();
            let mut answers_any = vec![false; n_queries];
            let mut positive_shards = vec![0usize; n_queries];
            for row in &rows {
                for (q, &hit) in row.answers.iter().enumerate() {
                    if hit {
                        answers_any[q] = true;
                        positive_shards[q] += 1;
                    }
                }
            }
            out.merged.push(MergedRelease {
                index: first.index,
                start: first.start,
                answers_any,
                positive_shards,
            });
        }
    }

    fn ensure_live(&self) -> Result<(), CoreError> {
        if self.finished {
            return Err(CoreError::InvalidService(
                "the service has been finished; no further ingestion".into(),
            ));
        }
        Ok(())
    }

    /// Number of partitions.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The registered subjects, in id order.
    pub fn subjects(&self) -> Vec<SubjectId> {
        let mut ids: Vec<SubjectId> = self.assignment.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The shard a registered subject's events are routed to.
    pub fn subject_shard(&self, subject: SubjectId) -> Option<usize> {
        self.assignment.get(&subject).copied()
    }

    /// Budget spent so far *for one subject* on one of their patterns
    /// (sequential composition across their shard's releases).
    pub fn budget_spent(&self, subject: SubjectId, pattern: PatternId) -> Epsilon {
        self.ledgers
            .get(&subject)
            .map(|l| l.spent(&pattern))
            .unwrap_or(Epsilon::ZERO)
    }

    /// Total events accepted by `push_batch` so far (dropped ones
    /// included — they were ingested, then discarded as too late).
    pub fn events_ingested(&self) -> u64 {
        self.events_ingested
    }

    /// Events that arrived later than the bounded delay and were dropped,
    /// summed over shards.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.buffer.dropped()).sum()
    }

    /// Windows released so far, per shard.
    pub fn releases_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.engine.releases()).collect()
    }

    /// Names of the registered consumer queries, in [`QueryId`] order.
    pub fn query_names(&self) -> &[String] {
        &self.query_names
    }

    /// Events sitting in reorder buffers, not yet past the watermark.
    pub fn buffered(&self) -> usize {
        self.shards.iter().map(|s| s.buffer.pending()).sum()
    }
}

/// The splitmix64 finalizer: the service's stable hash for shard routing
/// and seed derivation.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdp_stream::EventType;

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    fn e(ty: u32, ms: i64) -> Event {
        Event::new(t(ty), Timestamp::from_millis(ms))
    }

    fn ke(subject: u64, ty: u32, ms: i64) -> KeyedEvent {
        KeyedEvent::new(SubjectId(subject), e(ty, ms))
    }

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn config(n_shards: usize) -> ServiceConfig {
        ServiceConfig {
            n_shards,
            n_types: 4,
            alpha: Alpha::HALF,
            ppm: PpmKind::Uniform { eps: eps(1.0) },
            streaming: StreamingConfig::tumbling(TimeDelta::from_millis(10)),
            max_delay: TimeDelta::from_millis(5),
            seed: 7,
        }
    }

    fn builder(n_shards: usize) -> ServiceBuilder {
        let mut b = ServiceBuilder::new(config(n_shards)).unwrap();
        b.register_private_pattern(SubjectId(1), Pattern::seq("p1", vec![t(0), t(1)]).unwrap());
        b.register_private_pattern(SubjectId(2), Pattern::single("p2", t(3)));
        b.register_subject(SubjectId(3));
        b.register_target_query("t2?", Pattern::single("t2", t(2)));
        b
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(matches!(
            ServiceBuilder::new(config(0)),
            Err(CoreError::InvalidService(_))
        ));
    }

    #[test]
    fn rng_count_must_match_shards() {
        let b = builder(2);
        assert!(matches!(
            b.build_with_rngs(vec![DpRng::seed_from(1)]),
            Err(CoreError::InvalidService(_))
        ));
    }

    #[test]
    fn unknown_subjects_are_rejected() {
        let mut svc = builder(2).build().unwrap();
        let err = svc.push_batch(&[ke(99, 0, 1)]).unwrap_err();
        assert!(matches!(err, CoreError::UnknownSubject(99)));
    }

    #[test]
    fn rejected_batches_leave_the_service_untouched() {
        // an unknown subject *after* events that would close windows must
        // not half-apply the batch: no ingestion, no releases, no spend
        let mut svc = builder(1).build().unwrap();
        let poisoned = [ke(1, 0, 1), ke(1, 1, 500), ke(99, 0, 501)];
        assert!(matches!(
            svc.push_batch(&poisoned),
            Err(CoreError::UnknownSubject(99))
        ));
        assert_eq!(svc.events_ingested(), 0);
        assert_eq!(svc.buffered(), 0);
        assert_eq!(svc.releases_per_shard(), vec![0]);
        // the same batch without the poison pill applies normally
        let out = svc.push_batch(&poisoned[..2]).unwrap();
        assert!(!out.shard_releases.is_empty());
        assert_eq!(svc.events_ingested(), 2);
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let svc = builder(4).build().unwrap();
        for subject in svc.subjects() {
            let s = svc.subject_shard(subject).unwrap();
            assert_eq!(s, ShardedService::shard_for(subject, 4));
            assert!(s < 4);
        }
        assert_eq!(
            svc.subjects(),
            vec![SubjectId(1), SubjectId(2), SubjectId(3)]
        );
    }

    #[test]
    fn shard_seed_keeps_base_for_shard_zero() {
        assert_eq!(ShardedService::shard_seed(42, 0), 42);
        assert_ne!(ShardedService::shard_seed(42, 1), 42);
        assert_ne!(
            ShardedService::shard_seed(42, 1),
            ShardedService::shard_seed(42, 2)
        );
    }

    #[test]
    fn late_events_are_dropped_and_counted() {
        let mut svc = builder(1).build().unwrap();
        svc.push_batch(&[ke(1, 0, 100)]).unwrap(); // watermark 95
        svc.push_batch(&[ke(1, 1, 50)]).unwrap(); // too late
        assert_eq!(svc.dropped(), 1);
        assert_eq!(svc.events_ingested(), 2);
    }

    #[test]
    fn quiet_shards_release_via_global_watermark() {
        // subjects 1 and 2 land on different shards of a 4-way service,
        // leaving at least one shard with no subjects at all
        let svc = builder(4).build().unwrap();
        let s1 = svc.subject_shard(SubjectId(1)).unwrap();
        let s2 = svc.subject_shard(SubjectId(2)).unwrap();
        assert_ne!(s1, s2, "fixture subjects must split across shards");

        let mut svc = builder(4).build().unwrap();
        // only subject 1 reports: subject 2's shard is quiet and holds the
        // global watermark back (subjectless shards never do — they can
        // never receive events)
        svc.push_batch(&[ke(1, 0, 100)]).unwrap();
        assert_eq!(svc.low_watermark(), None, "quiet tenant shard holds it");
        // a heartbeat covers the quiet shard, and *every* shard releases
        let out = svc.advance_watermark(Timestamp::from_millis(100)).unwrap();
        assert_eq!(svc.low_watermark(), Some(Timestamp::from_millis(95)));
        // windows 0..=8 closed on *every* shard (95ms watermark, 10ms windows)
        assert_eq!(out.merged.len(), 9);
        let per_shard = svc.releases_per_shard();
        assert!(per_shard.iter().all(|&r| r == 9), "{per_shard:?}");
    }

    #[test]
    fn merged_answers_are_disjunctions() {
        let mut svc = builder(2).build().unwrap();
        // subject 3 emits the target type 2; nothing flips it (uniform PPM
        // touches only private-pattern types 0, 1, 3)
        svc.push_batch(&[ke(3, 2, 5)]).unwrap();
        let out = svc.advance_watermark(Timestamp::from_millis(40)).unwrap();
        assert!(!out.merged.is_empty());
        let w0 = &out.merged[0];
        assert_eq!(w0.index, 0);
        assert!(w0.answers_any[0], "target type present in population");
        assert_eq!(w0.positive_shards[0], 1, "exactly one shard saw it");
        // merged rows arrive in index order
        for (k, m) in out.merged.iter().enumerate() {
            assert_eq!(m.index, k);
        }
    }

    #[test]
    fn per_subject_ledgers_charge_only_their_patterns() {
        let mut b = ServiceBuilder::new(config(1)).unwrap();
        let p1 =
            b.register_private_pattern(SubjectId(1), Pattern::seq("p1", vec![t(0), t(1)]).unwrap());
        let p2 = b.register_private_pattern(SubjectId(2), Pattern::single("p2", t(3)));
        b.register_target_query("t2?", Pattern::single("t2", t(2)));
        let mut svc = b.build().unwrap();
        svc.push_batch(&[ke(1, 0, 5)]).unwrap();
        let out = svc.advance_watermark(Timestamp::from_millis(35)).unwrap();
        let released: usize = out.merged.len();
        assert!(released >= 3);
        // both subjects sit on the single shard: each release charges each
        // subject their own pattern's full ε = 1.0 — and never the other's
        let spent1 = svc.budget_spent(SubjectId(1), p1).value();
        let spent2 = svc.budget_spent(SubjectId(2), p2).value();
        assert!((spent1 - released as f64).abs() < 1e-12, "{spent1}");
        assert!((spent2 - released as f64).abs() < 1e-12, "{spent2}");
        assert_eq!(svc.budget_spent(SubjectId(1), p2), Epsilon::ZERO);
        assert_eq!(svc.budget_spent(SubjectId(2), p1), Epsilon::ZERO);
    }

    #[test]
    fn finish_drains_buffers_and_seals_the_service() {
        let mut svc = builder(1).build().unwrap();
        svc.push_batch(&[ke(1, 0, 3), ke(1, 1, 4)]).unwrap();
        assert!(svc.buffered() > 0, "events await the watermark");
        let out = svc.finish().unwrap();
        assert_eq!(svc.buffered(), 0);
        assert_eq!(out.merged.len(), 1, "open window closed at finish");
        assert!(matches!(
            svc.push_batch(&[ke(1, 0, 50)]),
            Err(CoreError::InvalidService(_))
        ));
        assert!(matches!(svc.finish(), Err(CoreError::InvalidService(_))));
    }

    #[test]
    fn out_of_order_within_delay_is_reordered() {
        let mut svc = builder(1).build().unwrap();
        // 4 arrives after 7 but within the 5ms bound → reordered, not lost
        svc.push_batch(&[ke(1, 0, 7), ke(1, 1, 4), ke(1, 2, 9)])
            .unwrap();
        let out = svc.finish().unwrap();
        assert_eq!(svc.dropped(), 0);
        assert_eq!(out.merged.len(), 1);
        let release = &out.shard_releases.last().unwrap().release;
        // all three types present in window 0 — the late event made it in
        assert!(release.protected.get(t(2)));
        // one detection flag per registered pattern: p1, p2, and the target
        assert_eq!(release.raw_detections.len(), 3);
    }
}
