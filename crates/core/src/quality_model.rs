//! Quality estimation under per-event flips.
//!
//! Algorithm 1 needs `Q = α·Prec + (1−α)·Rec` as a function of the budget
//! shares, evaluated on historical data. The paper does not fix the
//! estimator; we provide two that agree (tested against each other):
//!
//! * **closed form** ([`QualityModel::expected_quality`]): each window's
//!   detection probability is the product of per-element report
//!   probabilities, accumulated into expected confusion counts and plugged
//!   into the precision/recall ratios. Deterministic and smooth — what the
//!   stepwise search wants.
//! * **Monte Carlo** ([`QualityModel::monte_carlo_quality`]): actually runs
//!   the mechanism `trials` times and averages hard confusion counts.

use pdp_cep::{PatternId, PatternSet};
use pdp_dp::DpRng;
use pdp_metrics::{Alpha, ConfusionMatrix, FractionalConfusion, QualityReport};
use pdp_stream::{EventType, WindowedIndicators};

use crate::error::CoreError;
use crate::protect::FlipTable;

/// Historical windows + target patterns + α, with detection truth
/// precomputed, ready to score candidate flip tables.
#[derive(Debug, Clone)]
pub struct QualityModel {
    windows: WindowedIndicators,
    /// Distinct element types per target pattern.
    targets: Vec<Vec<EventType>>,
    /// `truth[t][w]`: was target `t` truly detected in window `w`?
    truth: Vec<Vec<bool>>,
    alpha: Alpha,
}

impl QualityModel {
    /// Build from historical windows and the ids of the target patterns.
    pub fn new(
        windows: WindowedIndicators,
        patterns: &PatternSet,
        target_ids: &[PatternId],
        alpha: Alpha,
    ) -> Result<Self, CoreError> {
        let mut targets = Vec::with_capacity(target_ids.len());
        for &id in target_ids {
            let p = patterns.get(id).ok_or(CoreError::UnknownPattern(id.0))?;
            targets.push(p.distinct_types().into_iter().collect::<Vec<_>>());
        }
        let truth = targets
            .iter()
            .map(|tys| {
                windows
                    .iter()
                    .map(|w| tys.iter().all(|&ty| w.get(ty)))
                    .collect()
            })
            .collect();
        Ok(QualityModel {
            windows,
            targets,
            truth,
            alpha,
        })
    }

    /// The historical windows.
    pub fn windows(&self) -> &WindowedIndicators {
        &self.windows
    }

    /// The α in force.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// Number of target patterns scored.
    pub fn n_targets(&self) -> usize {
        self.targets.len()
    }

    /// Probability that target `t` is detected in window `w` under `table`.
    fn detect_prob(&self, t: usize, w: usize, table: &FlipTable) -> f64 {
        let window = self.windows.window(w);
        self.targets[t]
            .iter()
            .map(|&ty| table.prob(ty).report_one_prob(window.get(ty)))
            .product()
    }

    /// Closed-form expected quality under `table`.
    pub fn expected_quality(&self, table: &FlipTable) -> QualityReport {
        let mut conf = FractionalConfusion::new();
        for t in 0..self.targets.len() {
            for w in 0..self.windows.len() {
                conf.record(self.truth[t][w], self.detect_prob(t, w, table));
            }
        }
        QualityReport::from_fractional(&conf, self.alpha)
    }

    /// Monte-Carlo quality: run the mechanism `trials` times and average.
    pub fn monte_carlo_quality(
        &self,
        table: &FlipTable,
        trials: usize,
        rng: &mut DpRng,
    ) -> QualityReport {
        let mut conf = ConfusionMatrix::new();
        for trial in 0..trials {
            let mut trial_rng = rng.fork(trial as u64);
            let protected = table.apply(&self.windows, &mut trial_rng);
            for (t, tys) in self.targets.iter().enumerate() {
                for w in 0..protected.len() {
                    let detected = tys.iter().all(|&ty| protected.window(w).get(ty));
                    conf.record(self.truth[t][w], detected);
                }
            }
        }
        QualityReport::from_confusion(&conf, self.alpha)
    }

    /// The unprotected quality `Q_ord` (identity table). With exact truth
    /// playback this is 1 by construction — exposed for MRE baselines and
    /// as a sanity check.
    pub fn baseline_quality(&self) -> QualityReport {
        self.expected_quality(&FlipTable::identity(self.windows.n_types()))
    }
}

/// Convenience: expected `Q` under `table` for the given targets.
pub fn expected_quality(
    windows: &WindowedIndicators,
    patterns: &PatternSet,
    target_ids: &[PatternId],
    table: &FlipTable,
    alpha: Alpha,
) -> Result<f64, CoreError> {
    Ok(
        QualityModel::new(windows.clone(), patterns, target_ids, alpha)?
            .expected_quality(table)
            .q,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdp_cep::Pattern;
    use pdp_dp::{Epsilon, FlipProb};
    use pdp_stream::IndicatorVector;

    fn t(i: u32) -> EventType {
        EventType(i)
    }

    /// 4 windows over 3 types; target = {0, 1}; truth: detected in w0, w1.
    fn fixture() -> (WindowedIndicators, PatternSet, Vec<PatternId>) {
        let windows = WindowedIndicators::new(vec![
            IndicatorVector::from_present([t(0), t(1)], 3),
            IndicatorVector::from_present([t(0), t(1), t(2)], 3),
            IndicatorVector::from_present([t(0)], 3),
            IndicatorVector::empty(3),
        ]);
        let mut set = PatternSet::new();
        let target = set.insert(Pattern::seq("target", vec![t(0), t(1)]).unwrap());
        (windows, set, vec![target])
    }

    #[test]
    fn baseline_quality_is_perfect() {
        let (w, set, targets) = fixture();
        let model = QualityModel::new(w, &set, &targets, Alpha::HALF).unwrap();
        let base = model.baseline_quality();
        assert!((base.q - 1.0).abs() < 1e-12);
        assert!((base.precision - 1.0).abs() < 1e-12);
        assert!((base.recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_quality_closed_form_hand_check() {
        let (w, set, targets) = fixture();
        let model = QualityModel::new(w, &set, &targets, Alpha::HALF).unwrap();
        // flip type 1 with p = 0.25; types 0, 2 untouched.
        let mut table = FlipTable::identity(3);
        table.set_prob(t(1), FlipProb::new(0.25).unwrap()).unwrap();
        // detection probs per window: w0: 1·0.75, w1: 1·0.75,
        // w2: 1·0.25 (type1 absent, flips in), w3: 0·… = 0 (type0 absent)
        // truth: [T, T, F, F]
        // E[TP] = 1.5, E[FN] = 0.5, E[FP] = 0.25, E[TN] = 1.75
        let r = model.expected_quality(&table);
        let prec = 1.5 / 1.75;
        let rec = 0.75;
        assert!((r.precision - prec).abs() < 1e-12);
        assert!((r.recall - rec).abs() < 1e-12);
        assert!((r.q - 0.5 * (prec + rec)).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        let (w, set, targets) = fixture();
        let model = QualityModel::new(w, &set, &targets, Alpha::HALF).unwrap();
        let mut table = FlipTable::identity(3);
        table.set_prob(t(0), FlipProb::new(0.2).unwrap()).unwrap();
        table.set_prob(t(1), FlipProb::new(0.3).unwrap()).unwrap();
        let expected = model.expected_quality(&table);
        let mut rng = DpRng::seed_from(42);
        let mc = model.monte_carlo_quality(&table, 4000, &mut rng);
        assert!(
            (mc.q - expected.q).abs() < 0.03,
            "MC {} vs closed-form {}",
            mc.q,
            expected.q
        );
    }

    #[test]
    fn more_noise_means_less_quality() {
        let (w, set, targets) = fixture();
        let model = QualityModel::new(w, &set, &targets, Alpha::HALF).unwrap();
        let mut mild = FlipTable::identity(3);
        mild.set_prob(t(0), FlipProb::from_epsilon(Epsilon::new(3.0).unwrap()))
            .unwrap();
        let mut heavy = FlipTable::identity(3);
        heavy
            .set_prob(t(0), FlipProb::from_epsilon(Epsilon::new(0.2).unwrap()))
            .unwrap();
        let qm = model.expected_quality(&mild).q;
        let qh = model.expected_quality(&heavy).q;
        assert!(qh < qm, "heavy noise {qh} should be below mild {qm}");
    }

    #[test]
    fn unknown_target_rejected() {
        let (w, set, _) = fixture();
        assert!(QualityModel::new(w, &set, &[PatternId(9)], Alpha::HALF).is_err());
    }

    #[test]
    fn convenience_function_matches_model() {
        let (w, set, targets) = fixture();
        let table = FlipTable::identity(3);
        let q = expected_quality(&w, &set, &targets, &table, Alpha::HALF).unwrap();
        assert!((q - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_targets_accumulate() {
        let (w, mut set, mut targets) = fixture();
        targets.push(set.insert(Pattern::single("solo", t(2))));
        let model = QualityModel::new(w, &set, &targets, Alpha::HALF).unwrap();
        assert_eq!(model.n_targets(), 2);
        // identity still perfect with several targets
        assert!((model.baseline_quality().q - 1.0).abs() < 1e-12);
    }
}
