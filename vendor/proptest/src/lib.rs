//! Offline stand-in for `proptest`.
//!
//! The container cannot fetch the real proptest, so this crate reimplements
//! the subset the workspace's property tests use: the [`proptest!`] macro
//! (with optional `#![proptest_config(...)]`), [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assert_ne!`], range strategies, `any::<T>()`,
//! tuple strategies, [`collection::vec`], and string strategies given as a
//! character-class regex literal (`"[a-z]{0,10}"`).
//!
//! Cases are generated from a seed derived from the test's name, so every
//! run explores the same inputs — failures reproduce deterministically, at
//! the cost of proptest's shrinking (a failing case is reported verbatim).

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Everything a property test usually imports.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Runner knobs; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than real proptest's 256: these suites run in CI on every
        // push and the generators are not shrunk, so breadth beats depth.
        ProptestConfig { cases: 96 }
    }
}

/// Deterministic generator used by the runner (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from a test name: same name, same cases, every run.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then splitmix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform draw in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty range");
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        // Sampling the closed upper end with positive probability: widen by
        // one ulp-ish step and clamp.
        let x = lo + rng.unit() * (hi - lo) * (1.0 + 1e-12);
        x.clamp(lo, hi)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+),)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, len_range)` — a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// String strategies from a character-class regex literal
// ---------------------------------------------------------------------------

/// One atom of the supported regex subset.
enum Atom {
    /// A set of candidate characters with repetition bounds `[min, max]`.
    Class {
        chars: Vec<char>,
        min: usize,
        max: usize,
    },
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // Range like `a-z` (a `-` just before `]` is literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let end = chars[i + 2];
                        for code in (c as u32)..=(end as u32) {
                            if let Some(ch) = char::from_u32(code) {
                                set.push(ch);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                i += 1; // ']'
                set
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional {m,n} / {m} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed `{` in pattern")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier in pattern");
        atoms.push(Atom::Class {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    /// Interpret the string as a regex in the supported subset and generate
    /// matching strings.
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let Atom::Class { chars, min, max } = atom;
            assert!(!chars.is_empty(), "empty character class in pattern");
            let n = *min + rng.below((*max - *min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(chars[rng.below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Assert inside a property test (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Define property tests: each `fn` runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategies = ($($strat,)+);
                let mut __rng = $crate::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let ($($arg,)+) = $crate::Strategy::generate(&__strategies, &mut __rng);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = TestRng::from_name("bounds");
        let mut saw_low = false;
        for _ in 0..2000 {
            let v = (0u32..3).generate(&mut rng);
            assert!(v < 3);
            saw_low |= v == 0;
        }
        assert!(saw_low);
        for _ in 0..2000 {
            let v = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&v));
        }
        for _ in 0..200 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_len_range() {
        let mut rng = TestRng::from_name("vec");
        let strat = collection::vec((0u32..3, 0i64..200), 1..60);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((1..60).contains(&v.len()));
            assert!(v.iter().all(|&(a, b)| a < 3 && (0..200).contains(&b)));
        }
    }

    #[test]
    fn string_pattern_generates_matching_strings() {
        let mut rng = TestRng::from_name("string");
        let strat = "[a-c1-3_]{0,10}";
        for _ in 0..500 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.len() <= 10);
            assert!(s.chars().all(|c| "abc123_".contains(c)));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let strat = collection::vec(0u32..100, 1..20);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The macro itself works end to end.
        #[test]
        fn macro_end_to_end(v in collection::vec(any::<bool>(), 0..10), x in 1usize..5) {
            prop_assert!(v.len() < 10);
            prop_assert!((1..5).contains(&x));
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
