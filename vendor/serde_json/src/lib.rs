//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] model to JSON text and parses it
//! back: [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], plus an expression-form [`json!`] macro. Covers the JSON
//! grammar this workspace produces (no surrogate-pair escapes beyond
//! `\uXXXX` code units, which are paired during parsing).

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};

/// Encode any serializable value into the [`Value`] model.
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
    t.to_value()
}

/// Decode a typed value out of the [`Value`] model.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &t.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize to human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &t.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parse JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

/// Build a [`Value`] from any serializable expression: `json!(1)`,
/// `json!("x")`, `json!(some_struct)`.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($e:expr) => {
        $crate::to_value(&$e)
    };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error::custom(format!("{x} is not representable in JSON")));
            }
            // `{:?}` prints the shortest representation that round-trips,
            // and always includes a decimal point or exponent.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut pending_surrogate: Option<u16> = None;
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
            if pending_surrogate.is_some() && !chunk.is_empty() {
                return Err(Error::custom("unpaired surrogate escape"));
            }
            out.push_str(chunk);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    if pending_surrogate.is_some() {
                        return Err(Error::custom("unpaired surrogate escape"));
                    }
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("dangling escape"))?;
                    self.pos += 1;
                    let simple = match esc {
                        b'"' => Some('"'),
                        b'\\' => Some('\\'),
                        b'/' => Some('/'),
                        b'n' => Some('\n'),
                        b't' => Some('\t'),
                        b'r' => Some('\r'),
                        b'b' => Some('\u{8}'),
                        b'f' => Some('\u{c}'),
                        b'u' => None,
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    };
                    match simple {
                        Some(c) => {
                            if pending_surrogate.is_some() {
                                return Err(Error::custom("unpaired surrogate escape"));
                            }
                            out.push(c);
                        }
                        None => {
                            let unit = self.parse_hex4()?;
                            match pending_surrogate.take() {
                                Some(high) => {
                                    if !(0xDC00..=0xDFFF).contains(&unit) {
                                        return Err(Error::custom("unpaired surrogate escape"));
                                    }
                                    let c = 0x10000
                                        + ((u32::from(high) - 0xD800) << 10)
                                        + (u32::from(unit) - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| Error::custom("bad code point"))?,
                                    );
                                }
                                None if (0xD800..=0xDBFF).contains(&unit) => {
                                    pending_surrogate = Some(unit);
                                }
                                None => {
                                    out.push(
                                        char::from_u32(u32::from(unit))
                                            .ok_or_else(|| Error::custom("bad code point"))?,
                                    );
                                }
                            }
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::custom("bad \\u escape"))?;
        let unit = u16::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                // Integers beyond i64 degrade to floats, as in serde_json's
                // arbitrary-precision-off mode for u64 < f64 overlap.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::custom(format!("bad number `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e2").unwrap(), 250.0);
        assert_eq!(from_str::<String>("\"x\\ny\"").unwrap(), "x\ny");
        assert!(!from_str::<bool>(" false ").unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        let back: Vec<Option<u32>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn value_round_trips_and_indexes() {
        let v: Value = from_str(r#"{"a": 1, "b": [true, "x"], "c": {"d": 2.5}}"#).unwrap();
        assert_eq!(v["a"], Value::Int(1));
        assert_eq!(v["b"][1], Value::Str("x".into()));
        assert_eq!(v["c"]["d"], Value::Float(2.5));
        let text = to_string(&v).unwrap();
        let again: Value = from_str(&text).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e-300, 123456.789, -0.0] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {json}");
        }
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{"c":null}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_builds_values() {
        assert_eq!(json!(1), Value::Int(1));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!("s"), Value::Str("s".into()));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""é""#).unwrap(), "é");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<u32>("\"nope\"").is_err());
    }
}
