//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the *exact* API subset it consumes: [`RngCore`], [`SeedableRng`], the
//! [`Rng`] extension trait with `random::<f64>()` / `random_range(..)`, and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through a
//! splitmix64 expansion — statistically solid for simulation, deterministic
//! across platforms, and `Clone` so forked experiment RNGs stay independent.
//!
//! This is **not** a cryptographic RNG and makes no API-compatibility promise
//! beyond what the workspace itself calls.

use std::ops::Range;

/// Core generator interface (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable construction (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose entire state derives from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw bits.
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges samplable uniformly (mirrors `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Unbiased integer draw in `[0, span)` by rejection sampling.
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    assert!(span > 0, "empty range");
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform draw of `T` from the generator's raw bits.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's exact internal state. Together with
        /// [`StdRng::from_state`] this makes the position in the stream
        /// checkpointable: a generator restored from a captured state
        /// continues with the identical draw sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator at an exact captured position (the inverse
        /// of [`StdRng::state`]).
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_and_clone_independent() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = a.clone();
        for _ in 0..64 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            assert_eq!(v, c.next_u64());
        }
    }

    #[test]
    fn unit_draws_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_are_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0usize..5)] += 1;
        }
        for &c in &counts {
            let rate = c as f64 / 50_000.0;
            assert!((rate - 0.2).abs() < 0.02, "bucket rate {rate}");
        }
        for _ in 0..1_000 {
            let x = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
