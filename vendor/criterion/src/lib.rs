//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock harness: each
//! benchmark is warmed up, then timed over `sample_size` samples whose
//! per-sample iteration count is auto-scaled to ~5 ms, and the median
//! time/iteration (plus throughput, when declared) is printed.
//!
//! No statistics beyond the median, no plots, no saved baselines — the
//! point is that `cargo bench` compiles and produces honest numbers
//! offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared per-iteration workload, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's display identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (the group supplies the rest of the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts plain names.
pub trait IntoBenchmarkId {
    /// The id to display.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` repeatedly and record timing samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ≳5 ms (or a single iteration is already slower than that).
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", &id.into_benchmark_id(), None, sample_size, f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput declaration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into_benchmark_id(),
            self.throughput,
            self.sample_size,
            f,
        );
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into_benchmark_id(),
            self.throughput,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// End the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

fn run_one<F>(
    group: &str,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = per_iter[per_iter.len() / 2];
    let time = format_seconds(median);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / median;
            println!("{label:<50} {time:>12}/iter {:>14}/s", format_count(rate));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / median;
            println!("{label:<50} {time:>12}/iter {:>13}B/s", format_count(rate));
        }
        None => println!("{label:<50} {time:>12}/iter"),
    }
}

fn format_seconds(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn format_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2} G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} k", x / 1e3)
    } else {
        format!("{x:.1} ")
    }
}

/// Prevent the optimizer from discarding a value (re-export of `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("in", 1), &41u64, |b, &x| b.iter(|| x + 1));
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2u32).pow(10)));
    }

    criterion_group!(benches, work);

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn formatting_units() {
        assert!(format_seconds(2e-9).contains("ns"));
        assert!(format_seconds(2e-5).contains("µs"));
        assert!(format_seconds(2e-2).contains("ms"));
        assert!(format_count(5e6).contains('M'));
    }
}
