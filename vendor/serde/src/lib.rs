//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal serde: a single JSON-shaped [`Value`] data model, [`Serialize`] /
//! [`Deserialize`] traits that convert to and from it, and `derive` macros
//! (re-exported from the local `serde_derive` proc-macro crate) covering the
//! shapes this workspace actually derives — named structs, tuple/newtype
//! structs, and externally-tagged enums, honouring `#[serde(transparent)]`
//! and `#[serde(skip)]`.
//!
//! The representation matches real serde's JSON conventions closely enough
//! that round-trips through the vendored `serde_json` behave as the tests
//! expect; it makes no promise beyond that.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::Value;

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// The value-model encoding of `self`.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Decode `Self` from a value, or explain why it cannot be done.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected integer for {}, got {other:?}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Float(*self as f64),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => {
                u64::try_from(*i).map_err(|_| Error::custom(format!("{i} out of range for u64")))
            }
            other => Err(Error::custom(format!("expected integer, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-array, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!("expected 3-array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic key order keeps serialized output stable across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
