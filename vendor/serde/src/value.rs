//! The JSON-shaped data model shared by the vendored serde stack.

use std::ops::{Index, IndexMut};

/// A JSON value.
///
/// Objects are kept as insertion-ordered `(key, value)` pairs so serialized
/// output is stable and mirrors field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (JSON numbers without a fractional part).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload widened to `i64`, if any.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Any numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON rendering (as `serde_json::Value: Display`). Non-finite
    /// floats — unrepresentable in JSON — render as `null`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            Value::Float(_) => f.write_str("null"),
            Value::Str(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut std::fmt::Formatter<'_>, s: &str) -> std::fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl Index<&str> for Value {
    type Output = Value;

    /// Missing keys and non-objects index to `Null`, as in `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    /// Auto-vivifies: indexing `Null` turns it into an object, and a missing
    /// key is inserted as `Null`, as in `serde_json`.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Vec::new());
        }
        let entries = match self {
            Value::Object(entries) => entries,
            other => panic!("cannot index {other:?} with a string key"),
        };
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            return &mut entries[pos].1;
        }
        entries.push((key.to_owned(), Value::Null));
        &mut entries.last_mut().expect("just pushed").1
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_mut_inserts_and_overwrites() {
        let mut v = Value::Object(vec![("a".into(), Value::Int(1))]);
        v["a"] = Value::Int(2);
        v["b"] = Value::Bool(true);
        assert_eq!(v["a"], Value::Int(2));
        assert_eq!(v["b"], Value::Bool(true));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.as_str().is_none());
    }
}
