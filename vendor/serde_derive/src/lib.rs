//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` crate's value model, parsing the item at the token level
//! (the container has no `syn`/`quote`). Supported shapes — exactly the ones
//! this workspace derives:
//!
//! * named-field structs (honouring `#[serde(skip)]` fields);
//! * tuple and newtype structs (newtypes serialize transparently, matching
//!   real serde; `#[serde(transparent)]` is accepted and implied);
//! * unit structs;
//! * enums in serde's externally-tagged representation: unit variants as
//!   strings, data variants as single-key objects.
//!
//! Generic types are intentionally rejected with a `compile_error!` — none
//! exist in this workspace, and supporting them is not worth the token
//! gymnastics.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    skip: bool,
}

enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Parsed {
    name: String,
    item: Item,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse(input) {
        Ok(parsed) => match mode {
            Mode::Ser => gen_ser(&parsed),
            Mode::De => gen_de(&parsed),
        },
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse()
        .expect("serde_derive generated syntactically invalid Rust")
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

/// Consume leading attributes; report whether any was `#[serde(skip)]`.
fn eat_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (toks.get(*i), toks.get(*i + 1))
    {
        if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
            (inner.first(), inner.get(1))
        {
            if id.to_string() == "serde"
                && args
                    .stream()
                    .to_string()
                    .split(',')
                    .any(|part| part.trim() == "skip")
            {
                skip = true;
            }
        }
        *i += 2;
    }
    skip
}

/// Consume `pub` / `pub(crate)` style visibility.
fn eat_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip tokens until a comma at angle-bracket depth 0, consuming the comma.
fn skip_to_field_end(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = eat_attrs(&toks, &mut i);
        eat_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1; // name
        i += 1; // ':'
        skip_to_field_end(&toks, &mut i);
        fields.push(Field {
            name: Some(name),
            skip,
        });
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = eat_attrs(&toks, &mut i);
        eat_vis(&toks, &mut i);
        skip_to_field_end(&toks, &mut i);
        fields.push(Field { name: None, skip });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        eat_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        // Skip any discriminant and the separating comma.
        skip_to_field_end(&toks, &mut i);
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse(input: TokenStream) -> Result<Parsed, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    eat_attrs(&toks, &mut i);
    eat_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    let item = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Struct(Shape::Named(parse_named_fields(g.stream())?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::Struct(Shape::Tuple(parse_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct(Shape::Unit),
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive serde traits for `{other}`")),
    };
    Ok(Parsed { name, item })
}

// ---------------------------------------------------------------------------
// Code generation (string-based; parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn active(fields: &[Field]) -> impl Iterator<Item = (usize, &Field)> {
    fields.iter().enumerate().filter(|(_, f)| !f.skip)
}

fn gen_ser(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.item {
        Item::Struct(shape) => ser_struct_body(shape, "self.", name),
        Item::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&ser_variant_arm(name, v));
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Serialize a struct shape. `access` prefixes each field (`self.` for
/// structs, empty for destructured variant bindings).
fn ser_struct_body(shape: &Shape, access: &str, _name: &str) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Named(fields) => {
            let live: Vec<_> = active(fields).collect();
            let mut out = String::from(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for (_, f) in &live {
                let fname = f.name.as_deref().expect("named field");
                out.push_str(&format!(
                    "__fields.push(({fname:?}.to_string(), \
                     ::serde::Serialize::to_value(&{access}{fname})));\n"
                ));
            }
            out.push_str("::serde::Value::Object(__fields)");
            out
        }
        Shape::Tuple(fields) => {
            let live: Vec<_> = active(fields).collect();
            if live.len() == 1 {
                let (idx, _) = live[0];
                format!("::serde::Serialize::to_value(&{access}{idx})")
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|(idx, _)| format!("::serde::Serialize::to_value(&{access}{idx})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
        }
    }
}

fn ser_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => {
            format!("{enum_name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n")
        }
        Shape::Tuple(fields) => {
            let bindings: Vec<String> = (0..fields.len()).map(|i| format!("__f{i}")).collect();
            let live: Vec<&String> = bindings
                .iter()
                .zip(fields)
                .filter(|(_, f)| !f.skip)
                .map(|(b, _)| b)
                .collect();
            let payload = if live.len() == 1 {
                format!("::serde::Serialize::to_value({})", live[0])
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "{enum_name}::{vname}({binds}) => ::serde::Value::Object(vec![({vname:?}\
                 .to_string(), {payload})]),\n",
                binds = bindings.join(", ")
            )
        }
        Shape::Named(fields) => {
            let names: Vec<&str> = fields
                .iter()
                .map(|f| f.name.as_deref().expect("named field"))
                .collect();
            let live: Vec<&str> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| f.name.as_deref().expect("named field"))
                .collect();
            let items: Vec<String> = live
                .iter()
                .map(|n| format!("({n:?}.to_string(), ::serde::Serialize::to_value({n}))"))
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}\
                 .to_string(), ::serde::Value::Object(vec![{items}]))]),\n",
                binds = names.join(", "),
                items = items.join(", ")
            )
        }
    }
}

fn gen_de(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.item {
        Item::Struct(shape) => de_struct_body(name, shape),
        Item::Enum(variants) => de_enum_body(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
             {{ {body} }}\n\
         }}"
    )
}

/// `Name { f1: <extract "f1">, skipped: Default::default(), .. }` field list
/// pulled from a `__obj` binding of `&Vec<(String, Value)>`.
fn de_named_field_list(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = f.name.as_deref().expect("named field");
        if f.skip {
            out.push_str(&format!("{fname}: ::core::default::Default::default(),\n"));
        } else {
            out.push_str(&format!(
                "{fname}: match __obj.iter().find(|(__k, _)| __k == {fname:?}) {{\n\
                     Some((_, __fv)) => ::serde::Deserialize::from_value(__fv)?,\n\
                     None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                         .map_err(|_| ::serde::Error::custom(concat!(\"missing field `\", \
                          {fname:?}, \"`\")))?,\n\
                 }},\n"
            ));
        }
    }
    out
}

fn de_struct_body(name: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!("Ok({name})"),
        Shape::Named(fields) => format!(
            "let __obj = match __v {{\n\
                 ::serde::Value::Object(__entries) => __entries,\n\
                 __other => return Err(::serde::Error::custom(format!(\n\
                     \"expected object for {name}, got {{:?}}\", __other))),\n\
             }};\n\
             Ok({name} {{ {fields} }})",
            fields = de_named_field_list(fields)
        ),
        Shape::Tuple(fields) => {
            let live: Vec<_> = active(fields).collect();
            if live.len() == 1 {
                let exprs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            "::core::default::Default::default()".to_string()
                        } else {
                            "::serde::Deserialize::from_value(__v)?".to_string()
                        }
                    })
                    .collect();
                format!("Ok({name}({}))", exprs.join(", "))
            } else {
                let n = live.len();
                let mut idx = 0usize;
                let exprs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            "::core::default::Default::default()".to_string()
                        } else {
                            let e = format!("::serde::Deserialize::from_value(&__arr[{idx}])?");
                            idx += 1;
                            e
                        }
                    })
                    .collect();
                format!(
                    "let __arr = match __v {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {n} => __items,\n\
                         __other => return Err(::serde::Error::custom(format!(\n\
                             \"expected {n}-element array for {name}, got {{:?}}\", __other))),\n\
                     }};\n\
                     Ok({name}({exprs}))",
                    exprs = exprs.join(", ")
                )
            }
        }
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => {
                unit_arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n"));
            }
            Shape::Tuple(fields) => {
                let live: Vec<_> = active(fields).collect();
                let build = if live.len() == 1 {
                    let exprs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            if f.skip {
                                "::core::default::Default::default()".to_string()
                            } else {
                                "::serde::Deserialize::from_value(__inner)?".to_string()
                            }
                        })
                        .collect();
                    format!("Ok({name}::{vname}({}))", exprs.join(", "))
                } else {
                    let n = live.len();
                    let mut idx = 0usize;
                    let exprs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            if f.skip {
                                "::core::default::Default::default()".to_string()
                            } else {
                                let e = format!("::serde::Deserialize::from_value(&__arr[{idx}])?");
                                idx += 1;
                                e
                            }
                        })
                        .collect();
                    format!(
                        "{{ let __arr = match __inner {{\n\
                             ::serde::Value::Array(__items) if __items.len() == {n} => __items,\n\
                             __other => return Err(::serde::Error::custom(format!(\n\
                                 \"expected {n}-element array for {name}::{vname}, got {{:?}}\", \
                                  __other))),\n\
                         }};\n\
                         Ok({name}::{vname}({exprs})) }}",
                        exprs = exprs.join(", ")
                    )
                };
                data_arms.push_str(&format!("{vname:?} => {build},\n"));
            }
            Shape::Named(fields) => {
                data_arms.push_str(&format!(
                    "{vname:?} => {{\n\
                         let __obj = match __inner {{\n\
                             ::serde::Value::Object(__entries) => __entries,\n\
                             __other => return Err(::serde::Error::custom(format!(\n\
                                 \"expected object for {name}::{vname}, got {{:?}}\", __other))),\n\
                         }};\n\
                         Ok({name}::{vname} {{ {fields} }})\n\
                     }},\n",
                    fields = de_named_field_list(fields)
                ));
            }
        }
    }
    format!(
        "match __v {{\n\
             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::Error::custom(format!(\n\
                     \"unknown {name} variant `{{}}`\", __other))),\n\
             }},\n\
             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                     {data_arms}\
                     __other => Err(::serde::Error::custom(format!(\n\
                         \"unknown {name} variant `{{}}`\", __other))),\n\
                 }}\n\
             }},\n\
             __other => Err(::serde::Error::custom(format!(\n\
                 \"expected {name} enum encoding, got {{:?}}\", __other))),\n\
         }}"
    )
}
