//! # pattern-dp-repro — umbrella crate
//!
//! Re-exports the whole workspace of the ICDE 2023 reproduction
//! *"Differential Privacy for Protecting Private Patterns in Data
//! Streams"* under one roof, for the examples and cross-crate integration
//! tests. Library users should usually depend on the individual `pdp-*`
//! crates; this crate adds nothing beyond the re-exports and a
//! [`prelude`].
//!
//! Crate map:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`stream`] | `pdp-stream` | events, streams, windows, indicators |
//! | [`cep`] | `pdp-cep` | patterns, queries, NFA matching, detection |
//! | [`dp`] | `pdp-dp` | randomized response, Laplace, budgets |
//! | [`core`] | `pdp-core` | pattern-level DP, uniform/adaptive PPMs, trusted engine |
//! | [`baselines`] | `pdp-baselines` | BD, BA, landmark, event-level, full-stream RR |
//! | [`datasets`] | `pdp-datasets` | Algorithm 2 generator, taxi simulator |
//! | [`metrics`] | `pdp-metrics` | precision/recall/Q/MRE, statistics |
//! | [`experiments`] | `pdp-experiments` | Fig. 4 sweeps, ablations |
//! | [`server`] | `pdp-server` | framed TCP service edge, client, load generator |

pub use pdp_baselines as baselines;
pub use pdp_cep as cep;
pub use pdp_core as core;
pub use pdp_datasets as datasets;
pub use pdp_dp as dp;
pub use pdp_experiments as experiments;
pub use pdp_metrics as metrics;
pub use pdp_server as server;
pub use pdp_stream as stream;

/// The names most programs start from.
pub mod prelude {
    pub use pdp_cep::{Pattern, PatternId, PatternSet, Query, Semantics};
    pub use pdp_core::{
        KeyedEvent, Mechanism, PpmKind, ProtectionPipeline, ServiceBuilder, ServiceConfig,
        ShardedService, StreamingConfig, StreamingEngine, SubjectId, TrustedEngine,
        TrustedEngineConfig, WindowRelease,
    };
    pub use pdp_dp::{DpRng, Epsilon, FlipProb};
    pub use pdp_metrics::{mre, Alpha, QualityReport};
    pub use pdp_stream::{
        Event, EventStream, EventType, IndicatorVector, TimeDelta, Timestamp, WindowAssigner,
        WindowedIndicators,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let e = Epsilon::new(1.0).unwrap();
        let p = FlipProb::from_epsilon(e);
        assert!(p.value() > 0.0 && p.value() < 0.5);
        let pat = Pattern::single("x", EventType(0));
        assert_eq!(pat.len(), 1);
    }
}
